#include "src/verify/verifier.h"

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "src/util/math_util.h"

namespace t10::verify {
namespace {

// Operand TensorRefs of an operator in plan order (inputs..., output).
std::vector<const TensorRef*> OperandRefs(const Operator& op) {
  std::vector<const TensorRef*> refs;
  for (const TensorRef& input : op.inputs()) {
    refs.push_back(&input);
  }
  refs.push_back(&op.output());
  return refs;
}

// Rotating pace per operator axis (0 = axis not rotated), from the loop nest.
std::vector<std::int64_t> AxisPaces(const ExecutionPlan& plan) {
  std::vector<std::int64_t> pace(plan.op().axes().size(), 0);
  for (const RotationLoop& loop : plan.loops()) {
    if (loop.axis >= 0 && loop.axis < static_cast<int>(pace.size())) {
      pace[static_cast<std::size_t>(loop.axis)] = loop.pace;
    }
  }
  return pace;
}

// How many times the loop handling `axis` advances over the whole program:
// the product of the step counts of every loop at its level or outside it
// (mirrors ExecutionPlan::Evaluate and LowerPlan's stride arithmetic).
std::int64_t AxisAdvances(const ExecutionPlan& plan, int axis) {
  std::int64_t advances = 1;
  for (const RotationLoop& loop : plan.loops()) {
    advances *= loop.steps;
    if (loop.axis == axis) {
      return advances;
    }
  }
  return 0;  // Axis has no loop: it never advances.
}

// The slab each core ships when tensor `ti` rotates its dim `d`: rp elements
// of thickness along the rotating dim, i.e. window_bytes * pace / window_len.
// Returns -1 when the pace does not evenly tile the window into slabs.
std::int64_t ExpectedSlabBytes(const RTensorPlan& tp, int d, std::int64_t pace) {
  const std::int64_t window_len = tp.window[static_cast<std::size_t>(d)];
  if (window_len <= 0 || pace <= 0 || (tp.window_bytes * pace) % window_len != 0) {
    return -1;
  }
  return tp.window_bytes * pace / window_len;
}

bool ShapeDominates(const std::vector<std::int64_t>& a, const std::vector<std::int64_t>& b) {
  for (std::size_t d = 0; d < a.size(); ++d) {
    if (a[d] < b[d]) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::int64_t ProgramFootprintBytes(const ExecutionPlan& plan, const ChipSpec& chip) {
  // Mirror of ProgramExecutor::Run's allocation pattern: one window buffer
  // per operand (minimum 8 bytes, allocator-aligned) plus the bounded
  // staging buffer of the pseudo-shift mechanism.
  std::int64_t bytes = RoundUp(std::max<std::int64_t>(chip.shift_buffer_bytes, 1), 8);
  for (const RTensorPlan& tp : plan.tensors()) {
    bytes += RoundUp(std::max<std::int64_t>(tp.window_bytes, 8), 8);
  }
  return bytes;
}

bool InternalVerifyEnabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("T10_INTERNAL_VERIFY");  // NOLINT(concurrency-mt-unsafe): read once under static init.
    if (env != nullptr && env[0] != '\0') {
      return env[0] != '0';
    }
#ifndef NDEBUG
    return true;
#else
    return false;
#endif
  }();
  return enabled;
}

Verifier::Verifier(const ChipSpec& chip, VerifyOptions options)
    : chip_(chip), options_(options) {}

VerifyResult Verifier::VerifyGraph(const Graph& graph) const {
  VerifyResult result;
  if (graph.num_ops() == 0) {
    DiagnosticBuilder(result, "graph.empty", graph.name(), Severity::kWarning)
        << "graph has no operators";
    return result;
  }
  for (int i = 0; i < graph.num_ops(); ++i) {
    const Operator& op = graph.op(i);
    auto check_edge = [&](const TensorRef& ref, bool is_output) {
      if (!graph.HasTensor(ref.name)) {
        DiagnosticBuilder(result, "graph.dangling-operand", op.name())
                .Hint("every operand must be registered by Graph::Add")
            << "tensor '" << ref.name << "' is not recorded in the graph";
        return;
      }
      const TensorInfo& info = graph.tensor(ref.name);
      if (is_output) {
        if (info.producer != i) {
          DiagnosticBuilder(result, "graph.dangling-operand", op.name())
              << "output '" << ref.name << "' records producer " << info.producer
              << ", expected " << i;
        }
      } else {
        if (info.producer >= i) {
          DiagnosticBuilder(result, "graph.dangling-operand", op.name())
                  .Hint("operators must be added in execution order")
              << "input '" << ref.name << "' is produced by operator " << info.producer
              << ", at or after its consumer " << i;
        }
        if (std::find(info.consumers.begin(), info.consumers.end(), i) ==
            info.consumers.end()) {
          DiagnosticBuilder(result, "graph.dangling-operand", op.name())
              << "input '" << ref.name << "' does not record operator " << i
              << " among its consumers";
        }
        if (info.is_weight && info.producer != -1) {
          DiagnosticBuilder(result, "graph.dangling-operand", op.name())
              << "weight '" << ref.name << "' has producer " << info.producer
              << "; weights must be graph-level constants";
        }
      }
      if (info.dtype != ref.dtype) {
        DiagnosticBuilder(result, "graph.dtype-mismatch", op.name())
            << "tensor '" << ref.name << "' is recorded as " << DataTypeName(info.dtype)
            << " but used as " << DataTypeName(ref.dtype);
      }
      const std::vector<std::int64_t> shape = TensorShape(op.axes(), ref);
      if (shape != info.shape) {
        bool halo_use = info.halo_padded;
        for (const DimRef& dim : ref.dims) {
          halo_use = halo_use || dim.compound();
        }
        const bool tolerated =
            halo_use && shape.size() == info.shape.size() &&
            (ShapeDominates(shape, info.shape) || ShapeDominates(info.shape, shape));
        if (!tolerated) {
          DiagnosticBuilder(result, "graph.shape-mismatch", op.name())
                  .Hint("same-named tensors must agree on shape (halo pads excepted)")
              << "tensor '" << ref.name << "' is used with a shape that disagrees with "
              << "its recorded extent";
        }
      }
    };
    for (const TensorRef& input : op.inputs()) {
      check_edge(input, /*is_output=*/false);
    }
    check_edge(op.output(), /*is_output=*/true);
  }
  return result;
}

VerifyResult Verifier::VerifyPlan(const ExecutionPlan& plan) const {
  VerifyResult result;
  const Operator& op = plan.op();
  const std::vector<Axis>& axes = op.axes();
  const std::vector<const TensorRef*> operands = OperandRefs(op);
  const std::vector<std::int64_t>& slice = plan.axis_slices();

  // plan.cores: the spatial factorization must map onto the chip (§4.1).
  if (plan.cores_used() != Product(plan.fop())) {
    DiagnosticBuilder(result, "plan.cores", op.name())
        << "cores_used " << plan.cores_used() << " disagrees with prod(F_op) "
        << Product(plan.fop());
  }
  if (plan.cores_used() < 1 || plan.cores_used() > chip_.num_cores) {
    DiagnosticBuilder(result, "plan.cores", op.name())
            .Hint("cap prod(F_op) at the chip's core count")
        << "plan uses " << plan.cores_used() << " cores but the chip has "
        << chip_.num_cores;
  }
  // plan.degraded-cores: on a chip with a topology health mask, the plan
  // must fit the *surviving* cores — a plan that spans a downed core would
  // stall on its first shift (degraded re-planning contract).
  if (chip_.health.degraded() && plan.cores_used() > chip_.UsableCores()) {
    DiagnosticBuilder(result, "plan.degraded-cores", op.name())
            .Hint("recompile against chip.SurvivingSpec() and run with its core map")
        << "plan uses " << plan.cores_used() << " cores but only " << chip_.UsableCores()
        << " of " << chip_.num_cores << " survive the health mask";
  }
  for (std::size_t a = 0; a < axes.size(); ++a) {
    const std::int64_t s = plan.fop()[a];
    if (s < 1 || s > axes[a].length || slice[a] != CeilDiv(axes[a].length, s)) {
      DiagnosticBuilder(result, "plan.cores", op.name())
          << "axis " << axes[a].name << ": spatial factor " << s << " / slice " << slice[a]
          << " is inconsistent with length " << axes[a].length;
    }
  }

  // plan.capacity: every core must hold its windows plus the shift buffer
  // (§4.3's memory constraint, checked with LocalMemory's alignment).
  const std::int64_t footprint = ProgramFootprintBytes(plan, chip_);
  if (footprint > chip_.core_memory_bytes) {
    DiagnosticBuilder(result, "plan.capacity", op.name())
            .Hint("pick a larger F_op or f_t so per-core windows shrink")
        << "per-core footprint " << footprint << "B (plan accounting "
        << plan.PerCoreBytes(chip_) << "B) exceeds the " << chip_.core_memory_bytes
        << "B scratchpad";
  }

  // plan.window-tiling: f_t must tile each sub-tensor exactly into rings
  // that evenly cover the sharing cores (§4.2's rTensor partitioning).
  for (std::size_t ti = 0; ti < plan.tensors().size(); ++ti) {
    const RTensorPlan& tp = plan.tensors()[ti];
    const bool is_output = ti + 1 == plan.tensors().size();
    std::int64_t ring = 1;
    for (std::size_t d = 0; d < tp.temporal.size(); ++d) {
      const std::int64_t ft = tp.temporal[d];
      const bool rotating =
          std::find(tp.rotating_dims.begin(), tp.rotating_dims.end(), static_cast<int>(d)) !=
          tp.rotating_dims.end();
      if (ft < 1 || tp.window[d] * ft != tp.sub_shape[d]) {
        DiagnosticBuilder(result, "plan.window-tiling", op.name())
                .Operand(static_cast<int>(ti))
                .Hint("f_t must divide the sub-tensor length")
            << "dim " << d << ": window " << tp.window[d] << " x f_t " << ft
            << " does not tile sub-tensor length " << tp.sub_shape[d];
      }
      if (rotating != (ft > 1)) {
        DiagnosticBuilder(result, "plan.window-tiling", op.name())
                .Operand(static_cast<int>(ti))
            << "dim " << d << ": rotating_dims disagrees with f_t " << ft;
      }
      if (ft > 1 && operands[ti]->dims[d].compound()) {
        DiagnosticBuilder(result, "plan.window-tiling", op.name())
                .Operand(static_cast<int>(ti))
            << "compound (halo) dim " << d << " must not be temporally split";
      }
      ring *= ft;
    }
    if (ring != tp.ring_size) {
      DiagnosticBuilder(result, "plan.window-tiling", op.name())
              .Operand(static_cast<int>(ti))
          << "ring_size " << tp.ring_size << " disagrees with prod(f_t) " << ring;
    }
    if (tp.ring_size < 1 || tp.share_cores % tp.ring_size != 0 ||
        tp.replicas * tp.ring_size != tp.share_cores) {
      DiagnosticBuilder(result, "plan.window-tiling", op.name())
              .Operand(static_cast<int>(ti))
              .Hint("rings must evenly cover the sharing cores")
          << "rings of size " << tp.ring_size << " do not partition the " << tp.share_cores
          << " sharing cores (" << tp.replicas << " replicas)";
    }
    if (is_output && tp.ring_size != 1) {
      DiagnosticBuilder(result, "plan.output-rotation", op.name())
              .Operand(static_cast<int>(ti))
              .Hint("outputs use the reduce-scatter epilogue, not rotation")
          << "output tensor is temporally partitioned (ring_size " << tp.ring_size << ")";
    }
  }

  // plan.pace-alignment: rp divides the rotating dim's slice and equals the
  // minimum window among the tensors rotating on the axis (plan.h's
  // divisibility rule; paper §4.2 "rotating pace").
  std::vector<bool> axis_has_loop(axes.size(), false);
  for (const RotationLoop& loop : plan.loops()) {
    if (loop.axis < 0 || loop.axis >= static_cast<int>(axes.size())) {
      DiagnosticBuilder(result, "plan.pace-alignment", op.name())
          << "loop rotates unknown axis " << loop.axis;
      continue;
    }
    axis_has_loop[static_cast<std::size_t>(loop.axis)] = true;
    const std::int64_t axis_len = slice[static_cast<std::size_t>(loop.axis)];
    if (loop.pace < 1 || axis_len % loop.pace != 0 || loop.steps != axis_len / loop.pace) {
      DiagnosticBuilder(result, "plan.pace-alignment", op.name())
              .Hint("rp must divide the per-core slice of the rotating axis")
          << "axis " << axes[static_cast<std::size_t>(loop.axis)].name << ": pace "
          << loop.pace << " x steps " << loop.steps << " does not cover slice " << axis_len;
    }
    std::int64_t min_window = 0;
    for (std::size_t ti = 0; ti < plan.tensors().size(); ++ti) {
      const RTensorPlan& tp = plan.tensors()[ti];
      for (int d : tp.rotating_dims) {
        if (operands[ti]->dims[static_cast<std::size_t>(d)].axis == loop.axis) {
          const std::int64_t w = tp.window[static_cast<std::size_t>(d)];
          min_window = min_window == 0 ? w : std::min(min_window, w);
        }
      }
    }
    if (min_window == 0) {
      DiagnosticBuilder(result, "plan.step-consistency", op.name())
          << "loop rotates axis " << axes[static_cast<std::size_t>(loop.axis)].name
          << " but no tensor rotates on it";
    } else if (loop.pace != min_window) {
      DiagnosticBuilder(result, "plan.pace-alignment", op.name())
              .Hint("T10 designates rp as the minimum window length (§4.2)")
          << "axis " << axes[static_cast<std::size_t>(loop.axis)].name << ": pace "
          << loop.pace << " != minimum rotating window " << min_window;
    }
  }
  // plan.step-consistency: every rotating tensor must be driven by a loop,
  // otherwise some step would wait on a shift that is never scheduled.
  for (std::size_t ti = 0; ti < plan.tensors().size(); ++ti) {
    for (int d : plan.tensors()[ti].rotating_dims) {
      const int axis = operands[ti]->dims[static_cast<std::size_t>(d)].axis;
      if (axis < 0 || axis >= static_cast<int>(axes.size()) ||
          !axis_has_loop[static_cast<std::size_t>(axis)]) {
        DiagnosticBuilder(result, "plan.step-consistency", op.name())
                .Operand(static_cast<int>(ti))
                .Hint("every rotated axis needs a rotation loop")
            << "dim " << d << " rotates on axis " << axis << " which has no loop";
      }
    }
  }

  // plan.padding: heavy padding waste is legal but usually a search bug.
  if (plan.padding_ratio() < 0.5) {
    DiagnosticBuilder(result, "plan.padding", op.name(), Severity::kWarning)
            .Hint("check the search's padding_threshold constraint")
        << "padding wastes " << static_cast<int>((1.0 - plan.padding_ratio()) * 100.0)
        << "% of the partitioned footprint";
  }
  return result;
}

VerifyResult Verifier::VerifyProgram(const DeviceProgram& program,
                                     const ExecutionPlan& plan) const {
  VerifyResult result;
  const std::string& name = program.op_name.empty() ? plan.op().name() : program.op_name;
  const std::vector<const TensorRef*> operands = OperandRefs(plan.op());
  const int cores = static_cast<int>(plan.cores_used());
  const std::vector<std::int64_t> pace = AxisPaces(plan);

  if (program.cores_used != plan.cores_used()) {
    DiagnosticBuilder(result, "program.allocation", name)
        << "program uses " << program.cores_used << " cores but the plan uses "
        << plan.cores_used();
  }
  if (program.allocations.size() != plan.tensors().size()) {
    DiagnosticBuilder(result, "program.allocation", name)
        << "program has " << program.allocations.size() << " allocations for "
        << plan.tensors().size() << " operands";
    return result;  // Per-operand checks below would index out of range.
  }

  // program.capacity: allocations plus the shift staging buffer must fit the
  // scratchpad at every step (they are all live for the whole program).
  std::int64_t footprint = RoundUp(std::max<std::int64_t>(chip_.shift_buffer_bytes, 1), 8);
  for (const TensorAllocation& alloc : program.allocations) {
    footprint += RoundUp(std::max<std::int64_t>(alloc.window_bytes, 8), 8);
  }
  if (footprint > chip_.core_memory_bytes) {
    DiagnosticBuilder(result, "program.capacity", name)
            .Hint("the plan search must reject this configuration")
        << "per-core allocations + shift buffer (" << footprint << "B) exceed the "
        << chip_.core_memory_bytes << "B scratchpad";
  }

  // program.allocation + ring structure/conservation per operand.
  for (std::size_t ti = 0; ti < program.allocations.size(); ++ti) {
    const TensorAllocation& alloc = program.allocations[ti];
    const RTensorPlan& tp = plan.tensors()[ti];
    if (alloc.operand != static_cast<int>(ti) || alloc.window_bytes != tp.window_bytes) {
      DiagnosticBuilder(result, "program.allocation", name)
              .Operand(static_cast<int>(ti))
          << "allocation '" << alloc.name << "' (operand " << alloc.operand << ", "
          << alloc.window_bytes << "B) disagrees with the plan window (" << tp.window_bytes
          << "B)";
    }
    if ((tp.ring_size > 1) != !alloc.rings.empty()) {
      DiagnosticBuilder(result, "program.ring-structure", name)
              .Operand(static_cast<int>(ti))
          << "operand with ring_size " << tp.ring_size << " has " << alloc.rings.size()
          << " rings";
      continue;
    }
    if (alloc.rings.empty()) {
      continue;
    }
    // Structure: every ring is a cycle of ring_size distinct valid cores,
    // and there are exactly cores / ring_size of them.
    const std::int64_t expected_rings =
        tp.ring_size > 0 ? plan.cores_used() / tp.ring_size : 0;
    if (static_cast<std::int64_t>(alloc.rings.size()) != expected_rings) {
      DiagnosticBuilder(result, "program.ring-structure", name)
              .Operand(static_cast<int>(ti))
          << alloc.rings.size() << " rings, expected " << expected_rings << " (cores "
          << plan.cores_used() << " / ring_size " << tp.ring_size << ")";
    }
    // Conservation: with every member sending its head slab downstream, each
    // participating core must send exactly one slab and receive exactly one
    // slab per shift — i.e. the rings form disjoint cycles covering all
    // cores. A core covered twice (or never) breaks byte conservation.
    std::vector<int> sends(static_cast<std::size_t>(cores), 0);
    std::vector<int> receives(static_cast<std::size_t>(cores), 0);
    bool members_valid = true;
    for (const std::vector<int>& ring : alloc.rings) {
      if (static_cast<std::int64_t>(ring.size()) != tp.ring_size) {
        DiagnosticBuilder(result, "program.ring-structure", name)
                .Operand(static_cast<int>(ti))
            << "ring of size " << ring.size() << ", expected " << tp.ring_size;
      }
      for (std::size_t p = 0; p < ring.size(); ++p) {
        const int src = ring[p];
        const int dst = ring[(p + ring.size() - 1) % ring.size()];
        if (src < 0 || src >= cores) {
          DiagnosticBuilder(result, "program.ring-structure", name)
                  .Operand(static_cast<int>(ti))
                  .Core(src)
              << "ring member outside the " << cores << " participating cores";
          members_valid = false;
          continue;
        }
        ++sends[static_cast<std::size_t>(src)];
        if (dst >= 0 && dst < cores) {
          ++receives[static_cast<std::size_t>(dst)];
        }
      }
    }
    if (members_valid) {
      for (int c = 0; c < cores; ++c) {
        if (sends[static_cast<std::size_t>(c)] != 1 ||
            receives[static_cast<std::size_t>(c)] != 1) {
          DiagnosticBuilder(result, "program.ring-conservation", name)
                  .Operand(static_cast<int>(ti))
                  .Core(c)
                  .Hint("every slab leaving the ring must re-enter it")
              << "core sends " << sends[static_cast<std::size_t>(c)] << " and receives "
              << receives[static_cast<std::size_t>(c)]
              << " slab(s) per shift; rings must be disjoint cycles covering all cores";
          break;  // One diagnostic per operand is enough.
        }
      }
    }
  }

  // Expected slab bytes per (operand, rotating dim); -1 marks a pace that
  // does not evenly tile the window (fires program.slab-alignment).
  std::vector<std::int64_t> expected_shift_count(plan.tensors().size(), 0);
  std::vector<std::vector<std::int64_t>> slabs(plan.tensors().size());
  std::int64_t expected_traffic = 0;
  bool slabs_aligned = true;
  for (std::size_t ti = 0; ti < plan.tensors().size(); ++ti) {
    const RTensorPlan& tp = plan.tensors()[ti];
    for (int d : tp.rotating_dims) {
      const int axis = operands[ti]->dims[static_cast<std::size_t>(d)].axis;
      const std::int64_t slab =
          ExpectedSlabBytes(tp, d, pace[static_cast<std::size_t>(axis)]);
      if (slab <= 0) {
        DiagnosticBuilder(result, "program.slab-alignment", name)
                .Operand(static_cast<int>(ti))
                .Hint("rp must divide the rotating dim per the rule in plan.h")
            << "rotating pace " << pace[static_cast<std::size_t>(axis)]
            << " does not evenly tile window length "
            << tp.window[static_cast<std::size_t>(d)] << " into slabs";
        slabs_aligned = false;
        continue;
      }
      slabs[ti].push_back(slab);
      const std::int64_t advances = AxisAdvances(plan, axis);
      expected_shift_count[ti] += advances;
      expected_traffic += advances * slab;
    }
  }

  // program.step-count + per-step checks.
  if (static_cast<std::int64_t>(program.steps.size()) != plan.total_steps()) {
    DiagnosticBuilder(result, "program.step-count", name)
        << "program has " << program.steps.size() << " steps but the plan's loop nest runs "
        << plan.total_steps();
  }
  std::vector<std::int64_t> shift_count(plan.tensors().size(), 0);
  std::vector<bool> staging_warned(plan.tensors().size(), false);
  for (std::size_t s = 0; s < program.steps.size(); ++s) {
    const ProgramStep& step = program.steps[s];
    if (step.compute.vertices != plan.cores_used()) {
      DiagnosticBuilder(result, "program.compute-vertices", name)
              .Step(static_cast<int>(s))
          << "ComputeSet runs " << step.compute.vertices << " vertices, expected "
          << plan.cores_used();
    }
    for (const ShiftSet& shift : step.shifts) {
      if (shift.operand < 0 ||
          shift.operand >= static_cast<int>(plan.tensors().size())) {
        DiagnosticBuilder(result, "program.shift-operand", name)
                .Step(static_cast<int>(s))
            << "shift references unknown operand " << shift.operand;
        continue;
      }
      const std::size_t ti = static_cast<std::size_t>(shift.operand);
      if (plan.tensors()[ti].ring_size <= 1) {
        DiagnosticBuilder(result, "program.shift-operand", name)
                .Step(static_cast<int>(s))
                .Operand(shift.operand)
            << "shift of an operand with no rotation ring";
        continue;
      }
      ++shift_count[ti];
      if (std::find(slabs[ti].begin(), slabs[ti].end(), shift.slab_bytes) ==
          slabs[ti].end()) {
        DiagnosticBuilder(result, "program.slab-alignment", name)
                .Step(static_cast<int>(s))
                .Operand(shift.operand)
                .Hint("slab bytes must equal window_bytes * rp / window_len")
            << "slab of " << shift.slab_bytes << "B does not match any whole-pace slab of "
            << "this operand";
        slabs_aligned = false;
      }
      if (chip_.shift_buffer_bytes <= 0) {
        DiagnosticBuilder(result, "program.staging", name)
                .Step(static_cast<int>(s))
            << "program shifts data but the chip reserves no shift buffer";
      } else if (shift.slab_bytes > chip_.shift_buffer_bytes &&
                 !staging_warned[ti]) {
        staging_warned[ti] = true;
        DiagnosticBuilder(result, "program.staging", name, Severity::kWarning)
                .Operand(shift.operand)
                .Hint("slabs larger than the staging buffer ship in multiple rounds")
            << "slab of " << shift.slab_bytes << "B exceeds the "
            << chip_.shift_buffer_bytes << "B shift buffer";
      }
    }
  }
  for (std::size_t ti = 0; ti < plan.tensors().size(); ++ti) {
    if (shift_count[ti] != expected_shift_count[ti]) {
      DiagnosticBuilder(result, "program.step-count", name)
              .Operand(static_cast<int>(ti))
              .Hint("a missing shift deadlocks the step waiting on it")
          << "operand shifts " << shift_count[ti] << " time(s), expected "
          << expected_shift_count[ti];
    }
  }

  // program.epilogue: the reduce-scatter merge of partial outputs (§4.2).
  const std::int64_t reduce_group = plan.reduce_group();
  if (reduce_group > 1) {
    const std::int64_t chunk = CeilDiv(plan.output_plan().sub_bytes, reduce_group);
    if (program.epilogue_rounds != reduce_group - 1 ||
        program.epilogue_chunk_bytes != chunk) {
      DiagnosticBuilder(result, "program.epilogue", name)
          << "epilogue " << program.epilogue_rounds << " rounds x "
          << program.epilogue_chunk_bytes << "B, expected " << (reduce_group - 1) << " x "
          << chunk << "B for reduce group " << reduce_group;
    }
  } else if (program.epilogue_rounds != 0) {
    DiagnosticBuilder(result, "program.epilogue", name)
        << "epilogue present (" << program.epilogue_rounds
        << " rounds) with no spatially partitioned reduction";
  }

  // program.traffic-accounting: the program's per-core traffic must equal
  // the plan's analytic accounting (what Evaluate bills for).
  if (slabs_aligned) {
    expected_traffic += (reduce_group > 1 ? reduce_group - 1 : 0) *
                        CeilDiv(plan.output_plan().sub_bytes, std::max<std::int64_t>(
                                                                  reduce_group, 1));
    if (program.BytesSentPerCore() != expected_traffic) {
      DiagnosticBuilder(result, "program.traffic-accounting", name)
          << "program sends " << program.BytesSentPerCore()
          << "B per core but the plan accounts for " << expected_traffic << "B";
    }
  }
  return result;
}

VerifyResult Verifier::VerifyMemoryPlan(const MemoryPlan& plan) const {
  VerifyResult result;
  if (plan.intervals.empty()) {
    return result;
  }
  int num_ops = 0;
  for (const MemoryInterval& interval : plan.intervals) {
    num_ops = std::max(num_ops, interval.last_op + 1);
    if (interval.offset < 0 || interval.bytes <= 0 || interval.first_op > interval.last_op) {
      DiagnosticBuilder(result, "memplan.interval", interval.label)
          << "malformed interval: offset " << interval.offset << ", " << interval.bytes
          << "B, ops [" << interval.first_op << ", " << interval.last_op << "]";
    }
  }
  // memplan.overlap: two intervals that are live at the same operator must
  // occupy disjoint scratchpad ranges (liveness-based reuse, §4.4).
  for (std::size_t i = 0; i < plan.intervals.size(); ++i) {
    for (std::size_t j = i + 1; j < plan.intervals.size(); ++j) {
      const MemoryInterval& a = plan.intervals[i];
      const MemoryInterval& b = plan.intervals[j];
      const bool lifetimes_cross = a.first_op <= b.last_op && b.first_op <= a.last_op;
      const bool addresses_cross = a.offset < b.offset + RoundUp(b.bytes, 8) &&
                                   b.offset < a.offset + RoundUp(a.bytes, 8);
      if (lifetimes_cross && addresses_cross && a.offset >= 0 && b.offset >= 0) {
        DiagnosticBuilder(result, "memplan.overlap", a.label)
                .Hint("the planner must not reuse memory across live tensors")
            << "overlaps '" << b.label << "' at offset " << std::max(a.offset, b.offset)
            << " while both are live";
      }
    }
  }
  // memplan.peak: the recorded peak must equal the interval set's true
  // high-water mark under the allocator's 8-byte alignment.
  std::int64_t peak = 0;
  for (int t = 0; t < num_ops; ++t) {
    std::int64_t live = 0;
    for (const MemoryInterval& interval : plan.intervals) {
      if (interval.first_op <= t && t <= interval.last_op) {
        live += RoundUp(interval.bytes, 8);
      }
    }
    peak = std::max(peak, live);
  }
  if (plan.peak_bytes != peak) {
    DiagnosticBuilder(result, "memplan.peak", "memory plan")
        << "recorded peak " << plan.peak_bytes << "B disagrees with the interval set's "
        << peak << "B";
  }
  if (plan.fits != (plan.peak_bytes <= plan.capacity)) {
    DiagnosticBuilder(result, "memplan.peak", "memory plan")
        << "fits=" << plan.fits << " disagrees with peak " << plan.peak_bytes
        << "B vs capacity " << plan.capacity << "B";
  }
  return result;
}

VerifyResult Verifier::VerifyModel(const CompiledModel& model, const Graph& graph) const {
  VerifyResult result;
  if (!model.fits) {
    DiagnosticBuilder(result, "model.unfit", model.model_name, Severity::kNote)
        << "model does not fit the distributed memory; nothing further to verify";
    return result;
  }
  if (static_cast<int>(model.ops.size()) != graph.num_ops()) {
    DiagnosticBuilder(result, "model.op-order", model.model_name)
        << "compiled model has " << model.ops.size() << " ops for a graph of "
        << graph.num_ops();
    return result;
  }

  // model.reconcile-monotone: Algorithm 1 only ever trades idle memory *up*
  // for setup time, so the trajectory's idle bytes must be non-decreasing
  // and the chosen schedule must be the first feasible minimum (§4.3.2).
  for (std::size_t s = 1; s < model.reconcile_trajectory.size(); ++s) {
    if (model.reconcile_trajectory[s].idle_bytes_per_core <
        model.reconcile_trajectory[s - 1].idle_bytes_per_core) {
      DiagnosticBuilder(result, "model.reconcile-monotone", model.model_name)
              .Step(static_cast<int>(s))
              .Hint("greedy reconciliation steps must grow the idle footprint")
          << "trajectory idle bytes shrink from "
          << model.reconcile_trajectory[s - 1].idle_bytes_per_core << " to "
          << model.reconcile_trajectory[s].idle_bytes_per_core;
    }
  }
  const ReconcileStep* best = nullptr;
  for (const ReconcileStep& step : model.reconcile_trajectory) {
    if (step.feasible && (best == nullptr || step.total_seconds < best->total_seconds)) {
      best = &step;
    }
  }
  if (best != nullptr && best->idle_bytes_per_core != model.idle_bytes_per_core) {
    DiagnosticBuilder(result, "model.reconcile-monotone", model.model_name)
        << "chosen idle footprint " << model.idle_bytes_per_core
        << "B is not the best feasible trajectory point (" << best->idle_bytes_per_core
        << "B)";
  }

  std::int64_t idle_total = 0;
  for (int i = 0; i < graph.num_ops(); ++i) {
    const CompiledOp& compiled = model.ops[static_cast<std::size_t>(i)];
    const Operator& op = graph.op(i);
    if (compiled.op_index != i) {
      DiagnosticBuilder(result, "model.op-order", model.model_name)
          << "compiled op " << i << " records op_index " << compiled.op_index;
      continue;
    }
    // model.plan-binding: plans must reference the graph's operator storage
    // (a dangling or foreign Operator invalidates every derived number).
    if (&compiled.active_plan.op() != &op || &compiled.idle_plan.op() != &op) {
      DiagnosticBuilder(result, "model.plan-binding", op.name())
              .Hint("CompiledModel borrows the Graph's operators")
          << "plan is bound to a different Operator than the graph's";
      continue;
    }
    result.Merge(VerifyPlan(compiled.active_plan));
    result.Merge(VerifyPlan(compiled.idle_plan));
    result.Merge(VerifyProgram(LowerPlan(compiled.active_plan), compiled.active_plan));

    // model.metrics-mismatch: the recorded PlanMetrics must agree with the
    // plan they were evaluated from on every timing-independent field.
    auto check_metrics = [&](const PlanMetrics& metrics, const char* which) {
      if (metrics.cores_used != compiled.active_plan.cores_used() ||
          metrics.steps != compiled.active_plan.total_steps() ||
          metrics.per_core_bytes != compiled.active_plan.PerCoreBytes(chip_)) {
        DiagnosticBuilder(result, "model.metrics-mismatch", op.name())
            << which << " metrics (cores " << metrics.cores_used << ", steps "
            << metrics.steps << ", " << metrics.per_core_bytes
            << "B/core) disagree with the chosen plan (cores "
            << compiled.active_plan.cores_used() << ", steps "
            << compiled.active_plan.total_steps() << ", "
            << compiled.active_plan.PerCoreBytes(chip_) << "B/core)";
      }
    };
    check_metrics(compiled.measured, "measured");
    check_metrics(compiled.predicted, "predicted");

    // model.setup-accounting: idle->active weight fetches re-derived from
    // the two layouts must match what the schedule billed.
    std::int64_t fetch = 0;
    std::int64_t idle_weights = 0;
    std::int64_t active_weights = 0;
    for (std::size_t j = 0; j < op.inputs().size(); ++j) {
      if (!graph.tensor(op.inputs()[j].name).is_weight) {
        continue;
      }
      const std::int64_t idle_w = compiled.idle_plan.OperandWindowBytes(static_cast<int>(j));
      const std::int64_t active_w =
          compiled.active_plan.OperandWindowBytes(static_cast<int>(j));
      fetch += std::max<std::int64_t>(0, active_w - idle_w);
      idle_weights += idle_w;
      active_weights += active_w;
    }
    idle_total += idle_weights;
    if (compiled.setup_bytes != fetch) {
      DiagnosticBuilder(result, "model.setup-accounting", op.name())
          << "setup fetches " << compiled.setup_bytes << "B but the idle/active layouts "
          << "require " << fetch << "B";
    }
    if (compiled.setup_bytes == 0 && idle_weights > active_weights) {
      DiagnosticBuilder(result, "model.idle-oversized", op.name(), Severity::kWarning)
              .Hint("idle memory beyond the active windows buys no setup time")
          << "idle layout holds " << idle_weights << "B of weights, more than the active "
          << active_weights << "B, with nothing left to fetch";
    }
  }
  if (idle_total != model.idle_bytes_per_core) {
    DiagnosticBuilder(result, "model.idle-footprint", model.model_name)
        << "recorded idle footprint " << model.idle_bytes_per_core
        << "B disagrees with the chosen idle layouts (" << idle_total << "B)";
  }
  if (model.memory_peak_bytes > chip_.core_memory_bytes) {
    DiagnosticBuilder(result, "model.memory-peak", model.model_name)
            .Hint("the compiler's budget-shrinking loop must retry until this fits")
        << "claimed to fit but the memory plan peaks at " << model.memory_peak_bytes
        << "B on a " << chip_.core_memory_bytes << "B scratchpad";
  }
  return result;
}

VerifyResult Verifier::VerifyAll(const CompiledModel& model, const Graph& graph) const {
  VerifyResult result = VerifyGraph(graph);
  result.Merge(VerifyModel(model, graph));
  if (model.fits) {
    result.Merge(VerifyMemoryPlan(PlanMemory(model, graph, chip_)));
  }
  return result;
}

}  // namespace t10::verify
