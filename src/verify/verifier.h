// Static verifier for compute-shift programs (paper §4).
//
// T10's execution model is fully deterministic, so whole-program invariants
// are checkable before anything runs: per-core scratchpad capacity, ring
// conservation of every ShiftSet, rotation-pace divisibility (the `rp` rule
// in plan.h), step-count agreement across the operands of one operator, and
// the memory-monotone trajectory of Algorithm 1's reconciliation. The rules
// here check ExecutionPlans, lowered DevicePrograms, whole ir::Graphs, the
// liveness-based MemoryPlan, and compiled models without executing them,
// emitting structured diagnostics (diagnostics.h).
//
// The same rule implementations back three layers:
//   1. this library API (Verifier),
//   2. `t10c --verify[=strict]`, which runs the full pass after compilation
//      and exits with code 3 on a failed verification, and
//   3. in-pipeline assertions in Compiler::Compile, ProgramExecutor and
//      PlanMemory (gated by InternalVerifyEnabled) so the checker and the
//      simulator can never drift apart.
//
// The rule catalogue with paper-section references lives in DESIGN.md
// ("Static verification").

#ifndef T10_SRC_VERIFY_VERIFIER_H_
#define T10_SRC_VERIFY_VERIFIER_H_

#include <cstdint>

#include "src/core/compiler.h"
#include "src/core/device_program.h"
#include "src/core/memory_planner.h"
#include "src/core/plan.h"
#include "src/hardware/chip_spec.h"
#include "src/ir/graph.h"
#include "src/verify/diagnostics.h"

namespace t10::verify {

struct VerifyOptions {
  // Strict mode: warnings (padding waste, staging-buffer pressure, oversized
  // idle layouts) fail verification alongside errors.
  bool strict = false;
};

// Per-core scratchpad bytes the byte-level ProgramExecutor reserves for a
// lowered plan: one allocator-aligned window buffer per operand plus the
// bounded staging buffer (paper §5 pseudo-shift). This mirrors the executor's
// allocation pattern exactly; its observed LocalMemory high-water mark is
// asserted against this number so capacity checking cannot drift from the
// simulator.
std::int64_t ProgramFootprintBytes(const ExecutionPlan& plan, const ChipSpec& chip);

// True when the in-pipeline verification hooks run. Defaults to on in debug
// builds (!NDEBUG) and off otherwise; the T10_INTERNAL_VERIFY environment
// variable overrides in both directions ("1" enables, "0" disables).
bool InternalVerifyEnabled();

class Verifier {
 public:
  explicit Verifier(const ChipSpec& chip, VerifyOptions options = {});

  // Severity at which diagnostics fail verification under `options`.
  Severity fail_threshold() const {
    return options_.strict ? Severity::kWarning : Severity::kError;
  }

  // Graph-level checks: dangling operands, producer/consumer bookkeeping,
  // dtype and shape agreement across every edge.
  VerifyResult VerifyGraph(const Graph& graph) const;

  // Plan-level checks: core count, scratchpad capacity, rotation-pace
  // alignment, window tiling, ring arithmetic, output-rotation invariant.
  VerifyResult VerifyPlan(const ExecutionPlan& plan) const;

  // Program-level checks against the plan it was lowered from: allocation
  // agreement, ring conservation, slab alignment, per-step capacity,
  // step-count consistency, traffic accounting, epilogue shape.
  VerifyResult VerifyProgram(const DeviceProgram& program, const ExecutionPlan& plan) const;

  // Memory-plan checks: intervals with overlapping lifetimes occupy disjoint
  // scratchpad ranges, and the recorded peak matches the interval set.
  VerifyResult VerifyMemoryPlan(const MemoryPlan& plan) const;

  // Model-level checks: plan/graph binding, PlanMetrics agreement, setup-byte
  // accounting, Algorithm 1's memory-monotone trajectory, peak-memory fit;
  // recursively verifies every operator's plans and lowered program.
  VerifyResult VerifyModel(const CompiledModel& model, const Graph& graph) const;

  // Everything `t10c --verify` runs: graph + model + a fresh memory plan.
  VerifyResult VerifyAll(const CompiledModel& model, const Graph& graph) const;

  const ChipSpec& chip() const { return chip_; }

 private:
  ChipSpec chip_;
  VerifyOptions options_;
};

}  // namespace t10::verify

#endif  // T10_SRC_VERIFY_VERIFIER_H_
