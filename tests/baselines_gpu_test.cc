#include "src/baselines/gpu_roofline.h"

#include <gtest/gtest.h>

#include "src/ir/builder.h"
#include "src/models/zoo.h"

namespace t10 {
namespace {

Graph DecodeMatMul(std::int64_t batch) {
  Graph g("decode");
  g.Add(MatMulOp("fc", batch, 4096, 4096, DataType::kF16, "x", "w", "y"));
  g.MarkWeight("w");
  return g;
}

TEST(GpuRooflineTest, SmallBatchIsMemoryBound) {
  GpuRooflineExecutor gpu(GpuSpec::A100());
  Graph g = DecodeMatMul(1);
  GpuModelResult result = gpu.Run(g);
  ASSERT_EQ(result.per_op.size(), 1u);
  EXPECT_TRUE(result.per_op[0].memory_bound());
  // Weight streaming dominates: ~32MB at ~1.56TB/s effective.
  EXPECT_GT(result.per_op[0].hbm_bytes, 32 * 1024 * 1024);
}

TEST(GpuRooflineTest, LargeBatchBecomesComputeBound) {
  GpuRooflineExecutor gpu(GpuSpec::A100());
  GpuModelResult small = gpu.Run(DecodeMatMul(1));
  Graph big = DecodeMatMul(4096);
  GpuModelResult large = gpu.Run(big);
  EXPECT_FALSE(large.per_op[0].memory_bound());
  // Time grows far less than 4096x thanks to weight reuse.
  EXPECT_LT(large.TotalSeconds() / small.TotalSeconds(), 512.0);
}

TEST(GpuRooflineTest, MemoryBoundFraction) {
  GpuRooflineExecutor gpu(GpuSpec::A100());
  EXPECT_DOUBLE_EQ(gpu.Run(DecodeMatMul(1)).MemoryBoundFraction(), 1.0);
  Graph big = DecodeMatMul(8192);
  EXPECT_DOUBLE_EQ(gpu.Run(big).MemoryBoundFraction(), 0.0);
}

TEST(GpuRooflineTest, LlmLayerDominatedByWeights) {
  GpuRooflineExecutor gpu(GpuSpec::A100());
  Graph g = BuildOpt13b(1);
  GpuModelResult result = gpu.Run(g);
  // Decode at batch 1: essentially all matmul time is HBM streaming.
  EXPECT_GT(result.MemoryBoundFraction(), 0.6);
  EXPECT_GT(result.TotalSeconds(), 0.0);
}

}  // namespace
}  // namespace t10
