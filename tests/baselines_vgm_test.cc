#include "src/baselines/vgm.h"

#include <gtest/gtest.h>

#include "src/ir/builder.h"

namespace t10 {
namespace {

ChipSpec TestChip(int cores = 64) {
  ChipSpec chip = ChipSpec::IpuMk2();
  chip.num_cores = cores;
  chip.cores_per_chip = cores;
  return chip;
}

Graph Mlp(std::int64_t batch = 32) {
  Graph g("mlp");
  g.Add(MatMulOp("fc1", batch, 256, 512, DataType::kF16, "x", "w1", "h1"));
  g.Add(ElementwiseOp("gelu", {batch, 512}, DataType::kF16, "h1", "h2", 8.0));
  g.Add(MatMulOp("fc2", batch, 512, 256, DataType::kF16, "h2", "w2", "y"));
  g.MarkWeight("w1");
  g.MarkWeight("w2");
  return g;
}

TEST(VgmTest, ReserveCoversWeightsAndActivations) {
  VgmCompiler compiler(TestChip(), VgmPlanner::kRoller);
  Graph g = Mlp();
  std::int64_t reserve = compiler.VgmReserveBytes(g);
  // At least the sharded weights.
  EXPECT_GE(reserve * 64, g.WeightBytes());
  EXPECT_LT(reserve, TestChip().core_memory_bytes);
}

TEST(VgmTest, RollerCompilesMlp) {
  VgmCompiler compiler(TestChip(), VgmPlanner::kRoller);
  VgmModelResult result = compiler.Compile(Mlp());
  ASSERT_TRUE(result.fits);
  ASSERT_EQ(result.per_op.size(), 3u);
  EXPECT_GT(result.TotalSeconds(), 0.0);
  EXPECT_GT(result.TransferSeconds(), 0.0);
  for (const VgmOpCost& op : result.per_op) {
    EXPECT_GE(op.waves, 1);
    EXPECT_GT(op.tile_bytes, 0);
  }
}

TEST(VgmTest, TransferDominatesLikePaper) {
  // Fig 13: VGM-based execution spends a large share of time in transfers.
  VgmCompiler compiler(TestChip(1472), VgmPlanner::kRoller);
  VgmModelResult result = compiler.Compile(Mlp(128));
  ASSERT_TRUE(result.fits);
  double fraction = result.TransferSeconds() / result.TotalSeconds();
  EXPECT_GT(fraction, 0.3);
}

TEST(VgmTest, BandwidthUtilizationBelowRoofline) {
  // Fig 14: Roller achieves well under the 5.5 GB/s per-core roofline.
  VgmCompiler compiler(TestChip(1472), VgmPlanner::kRoller);
  VgmModelResult result = compiler.Compile(Mlp(128));
  ASSERT_TRUE(result.fits);
  double bw = result.AverageExchangeBandwidth();
  EXPECT_GT(bw, 1.5e9);
  EXPECT_LT(bw, 4.5e9);
}

TEST(VgmTest, PopartSlowerThanRoller) {
  Graph g = Mlp(64);
  VgmModelResult roller = VgmCompiler(TestChip(), VgmPlanner::kRoller).Compile(g);
  VgmModelResult popart = VgmCompiler(TestChip(), VgmPlanner::kPopart).Compile(g);
  ASSERT_TRUE(roller.fits);
  ASSERT_TRUE(popart.fits);
  EXPECT_GT(popart.TotalSeconds(), roller.TotalSeconds());
}

TEST(VgmTest, AnsorWithinRangeOfRoller) {
  // Paper §6.2: Ansor and Roller "have similar performance by exploring the
  // same optimization space".
  Graph g = Mlp(64);
  VgmModelResult roller = VgmCompiler(TestChip(), VgmPlanner::kRoller).Compile(g);
  VgmModelResult ansor = VgmCompiler(TestChip(), VgmPlanner::kAnsor).Compile(g);
  ASSERT_TRUE(roller.fits);
  ASSERT_TRUE(ansor.fits);
  double ratio = ansor.TotalSeconds() / roller.TotalSeconds();
  EXPECT_GT(ratio, 0.4);
  EXPECT_LT(ratio, 2.5);
}

TEST(VgmTest, OversizedModelDoesNotFit) {
  ChipSpec chip = TestChip(4);
  chip.core_memory_bytes = 16 * 1024;
  VgmCompiler compiler(chip, VgmPlanner::kRoller);
  Graph g("big");
  g.Add(MatMulOp("fc", 64, 2048, 2048, DataType::kF16, "x", "w", "y"));
  g.MarkWeight("w");
  VgmModelResult result = compiler.Compile(g);
  EXPECT_FALSE(result.fits);
}

TEST(VgmTest, TileRespectsBudget) {
  VgmCompiler compiler(TestChip(), VgmPlanner::kRoller);
  Operator op = MatMulOp("mm", 256, 256, 256, DataType::kF16, "A", "B", "C");
  const std::int64_t budget = 64 * 1024;
  auto cost = compiler.PlanOp(op, budget);
  ASSERT_TRUE(cost.has_value());
  EXPECT_LE(cost->tile_bytes, budget);
  // Roller grows tiles toward the budget: at least half used.
  EXPECT_GT(cost->tile_bytes, budget / 4);
}

TEST(VgmTest, NoTileFitsReturnsNullopt) {
  VgmCompiler compiler(TestChip(), VgmPlanner::kRoller);
  Operator op = MatMulOp("mm", 256, 4096, 256, DataType::kF16, "A", "B", "C");
  // Budget below even a unit tile's operands (3 f16 elements).
  EXPECT_FALSE(compiler.PlanOp(op, 4).has_value());
}

TEST(VgmTest, PopartFailsBeforeRollerUnderMemoryPressure) {
  // The vendor runtime reserves extra working space, so it OOMs at sizes
  // Roller still handles (paper: PopART fails the largest batch sizes).
  ChipSpec chip = TestChip(64);
  chip.core_memory_bytes = 96 * 1024;
  Graph g("pressure");
  g.Add(MatMulOp("fc", 256, 1024, 1024, DataType::kF16, "x", "w", "y"));
  g.MarkWeight("w");
  VgmModelResult roller = VgmCompiler(chip, VgmPlanner::kRoller).Compile(g);
  VgmModelResult popart = VgmCompiler(chip, VgmPlanner::kPopart).Compile(g);
  EXPECT_TRUE(roller.fits);
  EXPECT_FALSE(popart.fits);
}

}  // namespace
}  // namespace t10
