// The centralized exit-code contract (README "Exit codes" table): one test
// per documented code for each binary, so a behavior change that remaps a
// code cannot land silently.
//
//   t10c:      0 success, 1 model does not fit, 2 usage/flag error,
//              3 verification failure, 4 fault-campaign failure.
//   t10-serve: 0 success, 1 server failed to start or died, 2 usage error,
//              5 serving integrity failure, 7 shard loss (sharded run ended
//              with a chip permanently down, audit clean, and either
//              recovery was disabled or no feasible repartition existed — a
//              chip loss absorbed by --recover-on-chip-loss exits 0).
//   t10-lint:  0 clean, 2 usage error, 6 lint findings.
//
// Binary paths are injected by CMake as T10_T10C_BIN / T10_T10_SERVE_BIN /
// T10_T10_LINT_BIN.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

namespace t10 {
namespace {

int RunCommand(const std::string& command) {
  const int status = std::system(command.c_str());
  return WEXITSTATUS(status);
}

int RunT10c(const std::string& args) {
  return RunCommand(std::string(T10_T10C_BIN) + " " + args);
}

int RunT10Serve(const std::string& args) {
  return RunCommand(std::string(T10_T10_SERVE_BIN) + " " + args);
}

int RunT10Lint(const std::string& args) {
  return RunCommand(std::string(T10_T10_LINT_BIN) + " " + args);
}

std::string LintFixture(const std::string& name) {
  return std::string(T10_SOURCE_DIR) + "/tests/lint_fixtures/" + name;
}

void WriteModel(const std::string& path, const std::string& text) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  ASSERT_NE(file, nullptr) << path;
  std::fputs(text.c_str(), file);
  std::fclose(file);
}

TEST(ExitCodesTest, T10cSuccessIsZero) {
  EXPECT_EQ(RunT10c("--demo > /dev/null 2>&1"), 0);
}

TEST(ExitCodesTest, T10cModelThatDoesNotFitIsOne) {
  // One 1024^3 FP32 matmul needs ~12 MB of tensors; two scaled-IPU cores
  // offer ~1.2 MB of scratchpad in total.
  const std::string path = ::testing::TempDir() + "/exit_codes_big.t10";
  WriteModel(path,
             "model too-big\n"
             "matmul name=mm m=1024 k=1024 n=1024 a=A b=B c=C dtype=f32\n");
  EXPECT_EQ(RunT10c(path + " --cores 2 > /dev/null 2>&1"), 1);
}

TEST(ExitCodesTest, T10cUsageErrorsAreTwo) {
  EXPECT_EQ(RunT10c("--no-such-flag > /dev/null 2>&1"), 2);
  EXPECT_EQ(RunT10c("--demo --cores 0 > /dev/null 2>&1"), 2);
  EXPECT_EQ(RunT10c("--demo --faults bogus=1 > /dev/null 2>&1"), 2);
  EXPECT_EQ(RunT10c("> /dev/null 2>&1"), 2);  // No model given.
}

TEST(ExitCodesTest, T10cVerificationFailureIsThree) {
  // An empty model compiles but draws a graph.empty warning, which strict
  // verification escalates to a failure.
  const std::string path = ::testing::TempDir() + "/exit_codes_empty.t10";
  WriteModel(path, "model empty\n");
  EXPECT_EQ(RunT10c(path + " --verify=strict > /dev/null 2>&1"), 3);
  // The same model passes default (non-strict) verification: exit 3 is about
  // the verifier's verdict, not the model's emptiness.
  EXPECT_EQ(RunT10c(path + " --verify > /dev/null 2>&1"), 0);
}

TEST(ExitCodesTest, T10cFaultCampaignFailureIsFour) {
  // Corrupt every transfer: retry/rollback budgets exhaust and the campaign
  // reports ops that did not survive, the documented operational failure.
  EXPECT_EQ(RunT10c("--demo --faults burst=1000000000,seed=1 > /dev/null 2>&1"), 4);
}

TEST(ExitCodesTest, T10cShardedSuccessIsZero) {
  // Partition the demo model over 4 chips, verify the cross-chip rules
  // strictly, and simulate every boundary transfer byte-for-byte.
  EXPECT_EQ(RunT10c("--demo --cores 64 --chips 4 --verify=strict > /dev/null 2>&1"), 0);
}

TEST(ExitCodesTest, T10cShardedModelThatDoesNotFitIsOne) {
  // Stages are operator-granular: one 4 MB-weight matmul cannot fit any
  // 2-core chip, so no chip count rescues it.
  const std::string path = ::testing::TempDir() + "/exit_codes_sharded_big.t10";
  WriteModel(path,
             "model too-big\n"
             "matmul name=mm m=1024 k=1024 n=1024 a=A b=B c=C dtype=f32\n");
  EXPECT_EQ(RunT10c(path + " --cores 2 --chips 4 > /dev/null 2>&1"), 1);
}

TEST(ExitCodesTest, T10cShardedUsageErrorsAreTwo) {
  EXPECT_EQ(RunT10c("--demo --chips 0 > /dev/null 2>&1"), 2);
  EXPECT_EQ(RunT10c("--demo --chips 2 --topology bogus > /dev/null 2>&1"), 2);
  // Fault campaigns and codegen are single-chip features: combining them
  // with --chips is rejected up front, not silently ignored.
  EXPECT_EQ(RunT10c("--demo --chips 2 --faults burst=1,seed=1 > /dev/null 2>&1"), 2);
  EXPECT_EQ(RunT10c("--demo --chips 2 --code /tmp/code.txt > /dev/null 2>&1"), 2);
}

TEST(ExitCodesTest, T10ServeSuccessIsZero) {
  EXPECT_EQ(RunT10Serve("--requests 4 --cores 8 > /dev/null 2>&1"), 0);
}

TEST(ExitCodesTest, T10ServeUsageErrorsAreTwo) {
  EXPECT_EQ(RunT10Serve("--no-such-flag > /dev/null 2>&1"), 2);
  EXPECT_EQ(RunT10Serve("--requests 0 > /dev/null 2>&1"), 2);
  EXPECT_EQ(RunT10Serve("--faults bogus=1 > /dev/null 2>&1"), 2);
  EXPECT_EQ(RunT10Serve("--requests > /dev/null 2>&1"), 2);  // Missing value.
}

TEST(ExitCodesTest, T10ServeObservabilityFlagErrorsAreTwo) {
  // Each observability flag requires a value...
  EXPECT_EQ(RunT10Serve("--trace > /dev/null 2>&1"), 2);
  EXPECT_EQ(RunT10Serve("--flight-recorder > /dev/null 2>&1"), 2);
  EXPECT_EQ(RunT10Serve("--plan-timings > /dev/null 2>&1"), 2);
  // ...and an unwritable output path fails fast, before serving starts.
  EXPECT_EQ(RunT10Serve("--requests 4 --trace /no/such/dir/t.json > /dev/null 2>&1"), 2);
  EXPECT_EQ(
      RunT10Serve("--requests 4 --flight-recorder /no/such/dir/fr.json > /dev/null 2>&1"), 2);
}

TEST(ExitCodesTest, T10ServeShardedSuccessIsZero) {
  EXPECT_EQ(RunT10Serve("--requests 6 --cores 8 --shards 2 > /dev/null 2>&1"), 0);
}

TEST(ExitCodesTest, T10ServeShardedUsageErrorsAreTwo) {
  EXPECT_EQ(RunT10Serve("--requests 4 --shards -1 > /dev/null 2>&1"), 2);
  // Chip-kill chaos flags require the sharded tier...
  EXPECT_EQ(RunT10Serve("--requests 4 --chaos-kill-chip-at 1 > /dev/null 2>&1"), 2);
  EXPECT_EQ(RunT10Serve("--requests 4 --chaos-chip 1 > /dev/null 2>&1"), 2);
  // ...and the target chip must exist.
  EXPECT_EQ(
      RunT10Serve("--requests 4 --shards 2 --chaos-chip 2 > /dev/null 2>&1"), 2);
}

TEST(ExitCodesTest, T10ServeShardLossIsSeven) {
  // A mid-run chip kill downs one shard permanently; the survivors answer
  // everything (audit clean), so the run reports shard loss, not integrity
  // failure.
  EXPECT_EQ(RunT10Serve("--requests 12 --cores 8 --shards 2 --retries 2 "
                        "--chaos-kill-chip-at 4 --chaos-chip 0 > /dev/null 2>&1"),
            7);
}

TEST(ExitCodesTest, T10ServePipelineSuccessIsZero) {
  EXPECT_EQ(RunT10Serve("--requests 6 --cores 8 --shards 4 --shard-mode pipeline "
                        "> /dev/null 2>&1"),
            0);
}

TEST(ExitCodesTest, T10ServePipelineUsageErrorsAreTwo) {
  // Pipeline mode partitions across chips, so it requires --shards...
  EXPECT_EQ(RunT10Serve("--requests 4 --shard-mode pipeline > /dev/null 2>&1"), 2);
  // ...and the mode name must be one of replicated | pipeline.
  EXPECT_EQ(RunT10Serve("--requests 4 --shards 2 --shard-mode bogus > /dev/null 2>&1"), 2);
}

TEST(ExitCodesTest, T10ServePipelineStageLossIsSeven) {
  // A mid-run chip kill downs one stage permanently. A stage has no replica,
  // so chains crossing it are answered with errors — exactly once each, audit
  // clean — and the run reports stage loss like any shard loss.
  EXPECT_EQ(RunT10Serve("--requests 12 --cores 8 --shards 4 --shard-mode pipeline "
                        "--chaos-kill-chip-at 4 --chaos-chip 2 > /dev/null 2>&1"),
            7);
}

TEST(ExitCodesTest, T10ServeRecoveredChipLossIsZero) {
  // The same stage-killing chaos run, with elastic recovery on: the router
  // repartitions over the survivors and the run finishes clean — exit 0
  // narrows exit 7 to losses that could not be absorbed.
  EXPECT_EQ(RunT10Serve("--requests 12 --cores 8 --shards 3 --shard-mode pipeline "
                        "--recover-on-chip-loss --chaos-kill-chip-at 4 --chaos-chip 1 "
                        "> /dev/null 2>&1"),
            0);
}

TEST(ExitCodesTest, T10ServeRecoveryFlagRequiresPipelineMode) {
  // Recovery repartitions a pipeline; replicated shards already have
  // failover, so the flag without pipeline mode is a usage error.
  EXPECT_EQ(RunT10Serve("--requests 4 --recover-on-chip-loss > /dev/null 2>&1"), 2);
  EXPECT_EQ(RunT10Serve("--requests 4 --shards 2 --recover-on-chip-loss "
                        "> /dev/null 2>&1"),
            2);
}

TEST(ExitCodesTest, T10ServeInfeasibleRecoveryIsSeven) {
  // A single-stage pipeline losing its only chip has no survivor to
  // repartition onto: recovery browns out and the loss still reports as 7.
  EXPECT_EQ(RunT10Serve("--requests 12 --cores 8 --shards 1 --shard-mode pipeline "
                        "--recover-on-chip-loss --chaos-kill-chip-at 4 --chaos-chip 0 "
                        "> /dev/null 2>&1"),
            7);
}

TEST(ExitCodesTest, T10LintCleanInputIsZero) {
  EXPECT_EQ(RunT10Lint(LintFixture("clean.cc") + " > /dev/null 2>&1"), 0);
  EXPECT_EQ(RunT10Lint("--list-rules > /dev/null 2>&1"), 0);
  EXPECT_EQ(RunT10Lint("--help > /dev/null 2>&1"), 0);
}

TEST(ExitCodesTest, T10LintUsageErrorsAreTwo) {
  EXPECT_EQ(RunT10Lint("> /dev/null 2>&1"), 2);  // No paths given.
  EXPECT_EQ(RunT10Lint("--no-such-flag > /dev/null 2>&1"), 2);
}

TEST(ExitCodesTest, T10LintFindingsAreSix) {
  EXPECT_EQ(RunT10Lint(LintFixture("raw_mutex.cc") + " > /dev/null 2>&1"), 6);
  // An unreadable path is reported as a finding, not a usage error.
  EXPECT_EQ(RunT10Lint("/no/such/t10/path > /dev/null 2>&1"), 6);
}

TEST(ExitCodesTest, T10cTraceSpansFlagErrorsAreTwo) {
  EXPECT_EQ(RunT10c("--demo --trace-spans > /dev/null 2>&1"), 2);  // Missing value.
  EXPECT_EQ(RunT10c("--demo --trace-spans /no/such/dir/spans.json > /dev/null 2>&1"), 2);
}

}  // namespace
}  // namespace t10
