// Sharded compilation across a simulated multi-chip cluster: ClusterSpec
// topology math, the inter-chip channel, graph partitioning, the sharded
// compiler's determinism contract, and the cross-chip verifier rules.

#include "src/core/sharded_compiler.h"

#include <gtest/gtest.h>

#include <cstring>

#include "src/core/compiler.h"
#include "src/core/partition.h"
#include "src/fault/fault_plan.h"
#include "src/hardware/cluster_spec.h"
#include "src/ir/builder.h"
#include "src/obs/metrics.h"
#include "src/sim/machine.h"
#include "src/verify/cluster_checks.h"

namespace t10 {
namespace {

ChipSpec SmallChip(int cores = 64) {
  ChipSpec chip = ChipSpec::IpuMk2();
  chip.num_cores = cores;
  chip.cores_per_chip = cores;
  return chip;
}

Graph Mlp(std::int64_t batch = 32) {
  Graph g("mlp");
  g.Add(MatMulOp("fc1", batch, 256, 512, DataType::kF16, "x", "w1", "h1"));
  g.Add(ElementwiseOp("gelu", {batch, 512}, DataType::kF16, "h1", "h2", 8.0));
  g.Add(MatMulOp("fc2", batch, 512, 256, DataType::kF16, "h2", "w2", "y"));
  g.MarkWeight("w1");
  g.MarkWeight("w2");
  return g;
}

// ---------------------------------------------------------------------------
// ClusterSpec: topology math and construction.
// ---------------------------------------------------------------------------

TEST(ClusterSpecTest, RingHopsAreCyclicDistance) {
  ClusterSpec cluster = ClusterSpec::Homogeneous(SmallChip(), 4, ClusterTopology::kRing);
  EXPECT_EQ(cluster.Hops(0, 0), 0);
  EXPECT_EQ(cluster.Hops(0, 1), 1);
  EXPECT_EQ(cluster.Hops(0, 2), 2);
  EXPECT_EQ(cluster.Hops(0, 3), 1);  // Bidirectional: the short way round.
  EXPECT_EQ(cluster.Hops(3, 1), 2);
}

TEST(ClusterSpecTest, MeshHopsAreManhattanDistance) {
  // 4 chips lay out as a 2x2 grid: 0 1 / 2 3.
  ClusterSpec cluster = ClusterSpec::Homogeneous(SmallChip(), 4, ClusterTopology::kMesh);
  EXPECT_EQ(cluster.Hops(0, 1), 1);
  EXPECT_EQ(cluster.Hops(0, 2), 1);
  EXPECT_EQ(cluster.Hops(0, 3), 2);  // Diagonal: no wraparound on a mesh.
  EXPECT_EQ(cluster.Hops(3, 3), 0);
}

TEST(ClusterSpecTest, TransferSecondsBillsLatencyAndWirePerHop) {
  ClusterSpec cluster = ClusterSpec::Homogeneous(
      SmallChip(), 4, ClusterTopology::kRing, /*bandwidth=*/1e9,
      /*latency_seconds=*/1e-6);
  const std::int64_t bytes = 1 << 20;
  // Store-and-forward: the full payload pays wire time at each of 2 hops.
  const double per_hop = 1e-6 + static_cast<double>(bytes) / 1e9;
  EXPECT_DOUBLE_EQ(cluster.TransferSeconds(0, 2, bytes), 2 * per_hop);
  EXPECT_DOUBLE_EQ(cluster.TransferSeconds(0, 1, bytes), per_hop);
  EXPECT_DOUBLE_EQ(cluster.TransferSeconds(1, 1, bytes), 0.0);
}

TEST(ClusterSpecTest, HomogeneousReplicatesTheChip) {
  const ChipSpec chip = SmallChip(16);
  ClusterSpec cluster = ClusterSpec::Homogeneous(chip, 3);
  ASSERT_EQ(cluster.num_chips(), 3);
  EXPECT_EQ(cluster.TotalMemoryBytes(), 3 * chip.num_cores * chip.core_memory_bytes);
  EXPECT_GT(cluster.link.bandwidth, 0.0);
  EXPECT_GT(cluster.link.latency_seconds, 0.0);
}

// ---------------------------------------------------------------------------
// InterChipChannel: byte-level link simulation.
// ---------------------------------------------------------------------------

ChipSpec TinyChip(int cores, std::int64_t memory = 64 * 1024) {
  ChipSpec spec = ChipSpec::IpuMk2();
  spec.name = "tiny";
  spec.num_cores = cores;
  spec.cores_per_chip = cores;
  spec.core_memory_bytes = memory;
  return spec;
}

TEST(InterChipChannelTest, MovesBytesIntactAndBillsTheLink) {
  Machine src_chip(TinyChip(2));
  Machine dst_chip(TinyChip(2));
  const std::int64_t bytes = 4096;
  BufferHandle src = *src_chip.Allocate(0, bytes);
  BufferHandle dst = *dst_chip.Allocate(1, bytes);
  for (std::int64_t i = 0; i < bytes; ++i) {
    src_chip.Data(src)[i] = static_cast<std::byte>((7 * i + 3) % 251);
  }
  InterChipChannel channel(/*bandwidth=*/1e9, /*latency_seconds=*/2e-6, /*hops=*/3);
  Status moved = channel.Transfer(src_chip, src, dst_chip, dst);
  ASSERT_TRUE(moved.ok()) << moved.ToString();
  EXPECT_EQ(std::memcmp(src_chip.Data(src), dst_chip.Data(dst),
                        static_cast<std::size_t>(bytes)),
            0);
  EXPECT_EQ(channel.bytes(), bytes);
  EXPECT_EQ(channel.transfers(), 1);
  EXPECT_DOUBLE_EQ(channel.seconds(), 3 * (2e-6 + static_cast<double>(bytes) / 1e9));
}

TEST(InterChipChannelTest, RefusesWhenAnEndpointCoreIsDown) {
  Machine src_chip(TinyChip(2));
  Machine dst_chip(TinyChip(2));
  fault::FaultInjector injector(fault::FaultSpec{});
  dst_chip.AttachFaults(&injector);
  BufferHandle src = *src_chip.Allocate(0, 64);
  BufferHandle dst = *dst_chip.Allocate(1, 64);
  std::memset(src_chip.Data(src), 0x5a, 64);
  std::memset(dst_chip.Data(dst), 0x00, 64);
  injector.KillCore(1);
  InterChipChannel channel(/*bandwidth=*/1e9, /*latency_seconds=*/1e-6);
  Status refused = channel.Transfer(src_chip, src, dst_chip, dst);
  EXPECT_EQ(refused.code(), StatusCode::kUnavailable);
  // Refused before any data moved or any link time was billed.
  EXPECT_EQ(dst_chip.Data(dst)[0], static_cast<std::byte>(0x00));
  EXPECT_EQ(channel.transfers(), 0);
  EXPECT_DOUBLE_EQ(channel.seconds(), 0.0);
}

TEST(InterChipChannelTest, RefusesWhenTheSourceCoreIsDown) {
  // The mirror of the endpoint-down case above: a dead SOURCE core refuses
  // before touching the destination, so a chip lost mid-recovery can never
  // half-ship a boundary tensor.
  Machine src_chip(TinyChip(2));
  Machine dst_chip(TinyChip(2));
  fault::FaultInjector injector(fault::FaultSpec{});
  src_chip.AttachFaults(&injector);
  BufferHandle src = *src_chip.Allocate(0, 64);
  BufferHandle dst = *dst_chip.Allocate(1, 64);
  std::memset(src_chip.Data(src), 0x5a, 64);
  std::memset(dst_chip.Data(dst), 0x00, 64);
  injector.KillCore(0);
  InterChipChannel channel(/*bandwidth=*/1e9, /*latency_seconds=*/1e-6);
  Status refused = channel.Transfer(src_chip, src, dst_chip, dst);
  EXPECT_EQ(refused.code(), StatusCode::kUnavailable);
  EXPECT_EQ(dst_chip.Data(dst)[0], static_cast<std::byte>(0x00));
  EXPECT_EQ(channel.bytes(), 0);
  EXPECT_EQ(channel.transfers(), 0);
  EXPECT_DOUBLE_EQ(channel.seconds(), 0.0);
}

TEST(InterChipChannelTest, EndpointDownRefusalBillsOnlyTheBlockedCounter) {
  // The global sim.machine.interchip_* registry must agree with the
  // per-channel view: a refusal bills exactly one blocked increment and
  // moves no bytes, pays no transfers, accrues no link seconds.
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  Machine src_chip(TinyChip(2));
  Machine dst_chip(TinyChip(2));
  fault::FaultInjector injector(fault::FaultSpec{});
  dst_chip.AttachFaults(&injector);
  BufferHandle src = *src_chip.Allocate(0, 128);
  BufferHandle dst = *dst_chip.Allocate(1, 128);
  injector.KillCore(1);
  InterChipChannel channel(/*bandwidth=*/1e9, /*latency_seconds=*/1e-6);
  const std::int64_t bytes_before =
      metrics.GetCounter("sim.machine.interchip_bytes").value();
  const std::int64_t transfers_before =
      metrics.GetCounter("sim.machine.interchip_transfers").value();
  const std::int64_t blocked_before =
      metrics.GetCounter("sim.machine.interchip_blocked").value();
  EXPECT_EQ(channel.Transfer(src_chip, src, dst_chip, dst).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(metrics.GetCounter("sim.machine.interchip_bytes").value(), bytes_before);
  EXPECT_EQ(metrics.GetCounter("sim.machine.interchip_transfers").value(),
            transfers_before);
  EXPECT_EQ(metrics.GetCounter("sim.machine.interchip_blocked").value(),
            blocked_before + 1);
}

// ---------------------------------------------------------------------------
// GraphPartition: contiguous stages, forward boundaries, determinism.
// ---------------------------------------------------------------------------

TEST(PartitionTest, ContiguousStagesCoverEveryOperator) {
  Graph graph = Mlp();
  ClusterSpec cluster = ClusterSpec::Homogeneous(SmallChip(), 3);
  GraphPartitionResult partition = PartitionGraph(graph, cluster);
  ASSERT_TRUE(partition.feasible) << partition.reason;
  EXPECT_EQ(partition.num_stages, 3);
  ASSERT_EQ(static_cast<int>(partition.stage_of_op.size()), graph.num_ops());
  // Stage ids are non-decreasing along the topological order and every
  // stage is a contiguous [first, last] run.
  for (int i = 1; i < graph.num_ops(); ++i) {
    EXPECT_GE(partition.stage_of_op[i], partition.stage_of_op[i - 1]);
  }
  for (int s = 0; s < partition.num_stages; ++s) {
    const auto [first, last] = partition.stage_ops[static_cast<std::size_t>(s)];
    for (int i = first; i <= last; ++i) {
      EXPECT_EQ(partition.stage_of_op[i], s);
    }
  }
  // Boundaries only flow forward and sum to BoundaryBytes().
  std::int64_t total = 0;
  for (const StageBoundary& boundary : partition.boundaries) {
    EXPECT_LT(boundary.src_stage, boundary.dst_stage);
    EXPECT_GT(boundary.bytes, 0);
    EXPECT_GT(boundary.transfer_seconds, 0.0);
    total += boundary.bytes;
  }
  EXPECT_EQ(partition.BoundaryBytes(), total);
  EXPECT_GT(partition.handoff_seconds, 0.0);
}

TEST(PartitionTest, SingleChipIsOneStageWithNoBoundaries) {
  Graph graph = Mlp();
  ClusterSpec cluster = ClusterSpec::Homogeneous(SmallChip(), 1);
  GraphPartitionResult partition = PartitionGraph(graph, cluster);
  ASSERT_TRUE(partition.feasible) << partition.reason;
  EXPECT_EQ(partition.num_stages, 1);
  EXPECT_TRUE(partition.boundaries.empty());
  EXPECT_DOUBLE_EQ(partition.handoff_seconds, 0.0);
}

TEST(PartitionTest, InfeasibleWhenNoCutFitsTheChips) {
  Graph graph = Mlp(/*batch=*/64);
  // 2 cores x 4KiB per chip cannot hold any stage of the MLP.
  ClusterSpec cluster = ClusterSpec::Homogeneous(TinyChip(2, 4 * 1024), 4);
  GraphPartitionResult partition = PartitionGraph(graph, cluster);
  EXPECT_FALSE(partition.feasible);
  EXPECT_FALSE(partition.reason.empty());
}

TEST(PartitionTest, DeterministicAcrossCalls) {
  Graph graph = Mlp();
  ClusterSpec cluster = ClusterSpec::Homogeneous(SmallChip(), 3);
  GraphPartitionResult a = PartitionGraph(graph, cluster);
  GraphPartitionResult b = PartitionGraph(graph, cluster);
  ASSERT_TRUE(a.feasible);
  EXPECT_EQ(a.stage_of_op, b.stage_of_op);
  EXPECT_EQ(a.stage_ops, b.stage_ops);
  ASSERT_EQ(a.boundaries.size(), b.boundaries.size());
  for (std::size_t i = 0; i < a.boundaries.size(); ++i) {
    EXPECT_EQ(a.boundaries[i].tensor, b.boundaries[i].tensor);
    EXPECT_EQ(a.boundaries[i].bytes, b.boundaries[i].bytes);
    EXPECT_EQ(a.boundaries[i].hops, b.boundaries[i].hops);
  }
}

// ---------------------------------------------------------------------------
// ShardedCompiler: per-chip pipelines, billing, determinism (the --jobs
// contract), and the grows-with-chips acceptance property.
// ---------------------------------------------------------------------------

TEST(ShardedCompilerTest, CompilesOneStagePerChipWithTransferPrograms) {
  ClusterSpec cluster = ClusterSpec::Homogeneous(SmallChip(), 3);
  ShardedCompiler compiler(cluster);
  Graph graph = Mlp();
  ShardedCompiledModel model = compiler.Compile(graph);
  ASSERT_TRUE(model.fits) << model.unfit_reason;
  ASSERT_EQ(model.num_stages(), 3);
  for (int s = 0; s < model.num_stages(); ++s) {
    const CompiledStage& stage = model.stages[static_cast<std::size_t>(s)];
    EXPECT_EQ(stage.chip_index, s);
    EXPECT_TRUE(stage.model.fits);
    EXPECT_GT(stage.model.TotalSeconds(), 0.0);
  }
  // Every non-final stage ships its boundary over the link and bills it.
  for (int s = 0; s + 1 < model.num_stages(); ++s) {
    const CompiledStage& stage = model.stages[static_cast<std::size_t>(s)];
    ASSERT_FALSE(stage.outgoing.empty());
    EXPECT_GT(stage.transfer.interchip_bytes, 0);
    EXPECT_GT(stage.transfer.interchip_seconds, 0.0);
  }
  EXPECT_GT(model.TotalSeconds(), 0.0);
  EXPECT_GE(model.TotalSeconds(), model.BottleneckSeconds());
}

TEST(ShardedCompilerTest, FingerprintIsByteIdenticalAcrossJobs) {
  // Satellite (b): the determinism contract. Same Graph + ClusterSpec must
  // produce byte-identical sharded fingerprints whether the per-stage pass
  // pipelines run on 1 worker or 8.
  ClusterSpec cluster = ClusterSpec::Homogeneous(SmallChip(), 3);
  Graph graph = Mlp();
  CompileOptions serial;
  serial.jobs = 1;
  CompileOptions wide;
  wide.jobs = 8;
  ShardedCompiledModel a = ShardedCompiler(cluster, serial).Compile(graph);
  ShardedCompiledModel b = ShardedCompiler(cluster, wide).Compile(graph);
  ShardedCompiledModel c = ShardedCompiler(cluster, serial).Compile(graph);
  ASSERT_TRUE(a.fits) << a.unfit_reason;
  ASSERT_TRUE(b.fits) << b.unfit_reason;
  const std::string fp = a.Fingerprint();
  EXPECT_FALSE(fp.empty());
  EXPECT_EQ(fp, b.Fingerprint());
  EXPECT_EQ(fp, c.Fingerprint());
}

TEST(ShardedCompilerTest, ModelBeyondOneChipFitsAcrossFour) {
  // The headline acceptance property: a model that cannot fit one chip's
  // scratchpad compiles and fits once partitioned over four chips.
  // 4 x 128KiB of F16 weights = 512KiB total against a 320KiB chip: no
  // single-chip plan can keep every layer resident, but any one stage fits.
  const ChipSpec chip = TinyChip(8, 40 * 1024);
  Graph graph("wide-mlp");
  graph.Add(MatMulOp("fc1", 16, 256, 256, DataType::kF16, "x", "w1", "h1"));
  graph.Add(MatMulOp("fc2", 16, 256, 256, DataType::kF16, "h1", "w2", "h2"));
  graph.Add(MatMulOp("fc3", 16, 256, 256, DataType::kF16, "h2", "w3", "h3"));
  graph.Add(MatMulOp("fc4", 16, 256, 256, DataType::kF16, "h3", "w4", "y"));
  graph.MarkWeight("w1");
  graph.MarkWeight("w2");
  graph.MarkWeight("w3");
  graph.MarkWeight("w4");
  Compiler single(chip);
  CompiledModel on_one = single.Compile(graph);
  ASSERT_FALSE(on_one.fits) << "model must exceed a single chip for this test";
  ShardedCompiler sharded(ClusterSpec::Homogeneous(chip, 4));
  ShardedCompiledModel on_four = sharded.Compile(graph);
  EXPECT_TRUE(on_four.fits) << on_four.unfit_reason;
  EXPECT_GT(on_four.num_stages(), 1);
}

TEST(ShardedCompilerTest, UnfitClusterReportsReason) {
  ClusterSpec cluster = ClusterSpec::Homogeneous(TinyChip(2, 4 * 1024), 2);
  ShardedCompiler compiler(cluster);
  Graph graph = Mlp(/*batch=*/64);
  ShardedCompiledModel model = compiler.Compile(graph);
  EXPECT_FALSE(model.fits);
  EXPECT_FALSE(model.unfit_reason.empty());
}

TEST(ShardedCompilerTest, SimulatedBoundaryTransfersArriveBitIdentical) {
  // Byte-level simulation over the InterChipChannel: every boundary tensor
  // crosses the link intact and bills positive link time.
  ClusterSpec cluster = ClusterSpec::Homogeneous(TinyChip(8, 256 * 1024), 3);
  ShardedCompiler compiler(cluster);
  Graph graph("pipe");
  graph.Add(MatMulOp("fc1", 8, 32, 32, DataType::kF16, "x", "w1", "h1"));
  graph.Add(ElementwiseOp("relu", {8, 32}, DataType::kF16, "h1", "h2", 1.0));
  graph.Add(MatMulOp("fc2", 8, 32, 16, DataType::kF16, "h2", "w2", "y"));
  graph.MarkWeight("w1");
  graph.MarkWeight("w2");
  ShardedCompiledModel model = compiler.Compile(graph);
  ASSERT_TRUE(model.fits) << model.unfit_reason;
  StatusOr<double> seconds = SimulateBoundaryTransfers(model);
  ASSERT_TRUE(seconds.ok()) << seconds.status().ToString();
  EXPECT_GT(*seconds, 0.0);
}

// ---------------------------------------------------------------------------
// Cross-chip verifier: a clean compile passes; targeted tampering trips the
// specific rule that guards the invariant.
// ---------------------------------------------------------------------------

class VerifyShardedTest : public ::testing::Test {
 protected:
  VerifyShardedTest()
      : cluster_(ClusterSpec::Homogeneous(SmallChip(), 3)),
        graph_(Mlp()),
        model_(ShardedCompiler(cluster_).Compile(graph_)) {}

  ClusterSpec cluster_;
  Graph graph_;
  ShardedCompiledModel model_;
};

TEST_F(VerifyShardedTest, CleanCompilePassesEveryRule) {
  ASSERT_TRUE(model_.fits) << model_.unfit_reason;
  verify::VerifyResult result = verify::VerifyShardedModel(model_, graph_);
  EXPECT_TRUE(result.ok()) << result.Listing();
}

TEST_F(VerifyShardedTest, NonContiguousStageAssignmentTripsContiguity) {
  ASSERT_TRUE(model_.fits);
  // Send the middle operator to the last stage: 0,2,2 -> stage 1 empty and
  // the runs no longer match stage_ops.
  model_.partition.stage_of_op[1] = 2;
  verify::VerifyResult result = verify::VerifyShardedModel(model_, graph_);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.HasRule("cluster.stage.contiguous")) << result.Listing();
}

TEST_F(VerifyShardedTest, ResizedBoundaryTensorTripsConservation) {
  ASSERT_TRUE(model_.fits);
  ASSERT_FALSE(model_.partition.boundaries.empty());
  model_.partition.boundaries[0].bytes += 4;  // Grew in transit.
  verify::VerifyResult result = verify::VerifyShardedModel(model_, graph_);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.HasRule("cluster.boundary.conservation")) << result.Listing();
}

TEST_F(VerifyShardedTest, DroppedBoundaryTripsConservation) {
  ASSERT_TRUE(model_.fits);
  ASSERT_FALSE(model_.partition.boundaries.empty());
  model_.partition.boundaries.pop_back();  // Lost in transit.
  verify::VerifyResult result = verify::VerifyShardedModel(model_, graph_);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.HasRule("cluster.boundary.conservation")) << result.Listing();
}

TEST_F(VerifyShardedTest, DuplicateChipAssignmentTripsAssignment) {
  ASSERT_TRUE(model_.fits);
  ASSERT_GE(model_.num_stages(), 2);
  model_.stages[1].chip_index = model_.stages[0].chip_index;
  verify::VerifyResult result = verify::VerifyShardedModel(model_, graph_);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.HasRule("cluster.chips.assignment")) << result.Listing();
}

TEST_F(VerifyShardedTest, UnfitStageTripsFitsRule) {
  ASSERT_TRUE(model_.fits);
  model_.stages[0].model.fits = false;
  verify::VerifyResult result = verify::VerifyShardedModel(model_, graph_);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.HasRule("cluster.stage.fits")) << result.Listing();
}

// ---------------------------------------------------------------------------
// RepartitionDegraded: the elastic-recovery re-cut over surviving chips.
// ---------------------------------------------------------------------------

TEST(RepartitionDegradedTest, SurvivorsKeepTheirOriginalChipIdentity) {
  Graph graph = Mlp();
  ClusterSpec cluster = ClusterSpec::Homogeneous(SmallChip(), 4);
  std::vector<bool> chip_down = {false, true, false, false};
  DegradedRepartition replan = RepartitionDegraded(graph, cluster, chip_down);
  ASSERT_TRUE(replan.partition.feasible) << replan.partition.reason;
  EXPECT_EQ(replan.survivors.num_chips(), 3);
  ASSERT_EQ(static_cast<int>(replan.stage_chips.size()), replan.partition.num_stages);
  for (const int chip : replan.stage_chips) {
    // Every stage lands on a survivor, named by its FULL-cluster index.
    EXPECT_NE(chip, 1);
    EXPECT_GE(chip, 0);
    EXPECT_LT(chip, 4);
  }
  // The re-cut still covers every operator exactly once.
  verify::VerifyResult structural =
      verify::VerifyPartition(replan.partition, graph, replan.survivors);
  EXPECT_TRUE(structural.ok()) << structural.Listing();
}

TEST(RepartitionDegradedTest, NoLossReproducesTheOriginalCut) {
  Graph graph = Mlp();
  ClusterSpec cluster = ClusterSpec::Homogeneous(SmallChip(), 3);
  GraphPartitionResult original = PartitionGraph(graph, cluster);
  DegradedRepartition replan =
      RepartitionDegraded(graph, cluster, {false, false, false});
  ASSERT_TRUE(replan.partition.feasible) << replan.partition.reason;
  EXPECT_EQ(replan.partition.stage_ops, original.stage_ops);
  EXPECT_EQ(replan.stage_chips, (std::vector<int>{0, 1, 2}));
}

TEST(RepartitionDegradedTest, EveryChipDownIsInfeasibleNotFatal) {
  Graph graph = Mlp();
  ClusterSpec cluster = ClusterSpec::Homogeneous(SmallChip(), 2);
  DegradedRepartition replan = RepartitionDegraded(graph, cluster, {true, true});
  EXPECT_FALSE(replan.partition.feasible);
  EXPECT_FALSE(replan.partition.reason.empty());
}

TEST(RepartitionDegradedTest, InfeasibleWhenSurvivorsCannotHoldTheModel) {
  // Each chip can hold one stage of the 4-layer model but never all of it
  // (the ShardedCompilerTest.ModelBeyondOneChipFitsAcrossFour setup): losing
  // three of four chips leaves no feasible cut.
  const ChipSpec chip = TinyChip(8, 40 * 1024);
  Graph graph("wide-mlp");
  graph.Add(MatMulOp("fc1", 16, 256, 256, DataType::kF16, "x", "w1", "h1"));
  graph.Add(MatMulOp("fc2", 16, 256, 256, DataType::kF16, "h1", "w2", "h2"));
  graph.Add(MatMulOp("fc3", 16, 256, 256, DataType::kF16, "h2", "w3", "h3"));
  graph.Add(MatMulOp("fc4", 16, 256, 256, DataType::kF16, "h3", "w4", "y"));
  graph.MarkWeight("w1");
  graph.MarkWeight("w2");
  graph.MarkWeight("w3");
  graph.MarkWeight("w4");
  ClusterSpec cluster = ClusterSpec::Homogeneous(chip, 4);
  DegradedRepartition replan =
      RepartitionDegraded(graph, cluster, {true, false, true, true});
  EXPECT_FALSE(replan.partition.feasible);
  EXPECT_FALSE(replan.partition.reason.empty());
}

// ---------------------------------------------------------------------------
// VerifyRecovery: the cluster.recovery.* gate over a degraded cut.
// ---------------------------------------------------------------------------

class VerifyRecoveryTest : public ::testing::Test {
 protected:
  VerifyRecoveryTest()
      : cluster_(ClusterSpec::Homogeneous(SmallChip(), 4)),
        graph_(Mlp()),
        chip_down_({false, true, false, false}),
        replan_(RepartitionDegraded(graph_, cluster_, chip_down_)) {}

  ClusterSpec cluster_;
  Graph graph_;
  std::vector<bool> chip_down_;
  DegradedRepartition replan_;
};

TEST_F(VerifyRecoveryTest, CleanRepartitionPasses) {
  ASSERT_TRUE(replan_.partition.feasible) << replan_.partition.reason;
  verify::VerifyResult result =
      verify::VerifyRecovery(replan_, graph_, cluster_, chip_down_, 0, 1);
  EXPECT_TRUE(result.ok()) << result.Listing();
}

TEST_F(VerifyRecoveryTest, NonMonotonicEpochTripsEpochRule) {
  verify::VerifyResult same =
      verify::VerifyRecovery(replan_, graph_, cluster_, chip_down_, 1, 1);
  EXPECT_FALSE(same.ok());
  EXPECT_TRUE(same.HasRule("cluster.recovery.epoch")) << same.Listing();
  verify::VerifyResult skipped =
      verify::VerifyRecovery(replan_, graph_, cluster_, chip_down_, 0, 2);
  EXPECT_TRUE(skipped.HasRule("cluster.recovery.epoch")) << skipped.Listing();
}

TEST_F(VerifyRecoveryTest, DroppedOperatorTripsCoverage) {
  ASSERT_TRUE(replan_.partition.feasible);
  // Shrink the last stage so the final operator falls out of every range.
  auto& last = replan_.partition.stage_ops.back();
  ASSERT_GT(last.second, 0);
  --last.second;
  verify::VerifyResult result =
      verify::VerifyRecovery(replan_, graph_, cluster_, chip_down_, 0, 1);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.HasRule("cluster.recovery.coverage")) << result.Listing();
}

TEST_F(VerifyRecoveryTest, StageOnDeadChipTripsAssignment) {
  ASSERT_TRUE(replan_.partition.feasible);
  replan_.stage_chips[0] = 1;  // Chip 1 is the one that died.
  verify::VerifyResult result =
      verify::VerifyRecovery(replan_, graph_, cluster_, chip_down_, 0, 1);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.HasRule("cluster.recovery.assignment")) << result.Listing();
}

TEST_F(VerifyRecoveryTest, DuplicateChipTripsAssignment) {
  ASSERT_TRUE(replan_.partition.feasible);
  ASSERT_GE(static_cast<int>(replan_.stage_chips.size()), 2);
  replan_.stage_chips[1] = replan_.stage_chips[0];
  verify::VerifyResult result =
      verify::VerifyRecovery(replan_, graph_, cluster_, chip_down_, 0, 1);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.HasRule("cluster.recovery.assignment")) << result.Listing();
}

// ---------------------------------------------------------------------------
// RecompileDegraded: recovery recompiles only what the re-cut moved.
// ---------------------------------------------------------------------------

TEST(RecompileDegradedTest, RecompilesOnlyChangedStagesAndStaysVerifiable) {
  ClusterSpec cluster = ClusterSpec::Homogeneous(SmallChip(), 3);
  ShardedCompiler compiler(cluster);
  Graph graph = Mlp();
  ShardedCompiledModel before = compiler.Compile(graph);
  ASSERT_TRUE(before.fits) << before.unfit_reason;

  ShardedCompiledModel after =
      compiler.RecompileDegraded(graph, std::move(before), {true, false, false});
  ASSERT_TRUE(after.fits) << after.unfit_reason;
  EXPECT_EQ(after.num_stages(), 2);
  for (const CompiledStage& stage : after.stages) {
    // Stages keep full-cluster chip identity and never land on the dead chip.
    EXPECT_NE(stage.chip_index, 0);
    EXPECT_TRUE(stage.model.fits);
    ASSERT_NE(stage.graph, nullptr);
  }
  // The degraded model's stage ranges still cover every operator.
  int covered = 0;
  for (const auto& [first, last] : after.partition.stage_ops) {
    covered += last - first + 1;
  }
  EXPECT_EQ(covered, graph.num_ops());
}

TEST(RecompileDegradedTest, InfeasibleRepartitionReportsUnfit) {
  ClusterSpec cluster = ClusterSpec::Homogeneous(SmallChip(), 2);
  ShardedCompiler compiler(cluster);
  Graph graph = Mlp();
  ShardedCompiledModel before = compiler.Compile(graph);
  ASSERT_TRUE(before.fits) << before.unfit_reason;
  ShardedCompiledModel after =
      compiler.RecompileDegraded(graph, std::move(before), {true, true});
  EXPECT_FALSE(after.fits);
  EXPECT_FALSE(after.unfit_reason.empty());
}

}  // namespace
}  // namespace t10
