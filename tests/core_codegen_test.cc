#include "src/core/codegen.h"

#include <gtest/gtest.h>

#include "src/ir/builder.h"

namespace t10 {
namespace {

ChipSpec SmallChip() {
  ChipSpec chip = ChipSpec::IpuMk2();
  chip.num_cores = 64;
  chip.cores_per_chip = 64;
  return chip;
}

TEST(CodegenTest, Figure7KernelStructure) {
  Operator op = MatMulOp("mm", 2, 6, 3, DataType::kF16, "A", "B", "C");
  auto plan = ExecutionPlan::Create(op, {2, 3, 1}, {{1, 3}, {2, 1}, {1, 1}});
  ASSERT_TRUE(plan.has_value());
  std::string code = GenerateKernelCode(*plan);
  // Vertex class with the accumulating loop nest over the rp-sized k block.
  EXPECT_NE(code.find("class mm_ContractionVertex : public Vertex"), std::string::npos) << code;
  EXPECT_NE(code.find("for (int k = 0; k < 2; ++k) {  // reduction"), std::string::npos) << code;
  EXPECT_NE(code.find("C[m][n] += A[m][k] * B[k][n];"), std::string::npos) << code;
  // Ring mappings and per-step shifts for both rotating tensors.
  EXPECT_NE(code.find("A.window(0).mapToRing("), std::string::npos) << code;
  EXPECT_NE(code.find("B.window(0).mapToRing("), std::string::npos) << code;
  EXPECT_NE(code.find("for (int step = 0; step < 3; ++step)"), std::string::npos) << code;
  EXPECT_NE(code.find("Shift(A, 4"), std::string::npos) << code;
  EXPECT_NE(code.find("Shift(B, 4"), std::string::npos) << code;
  EXPECT_EQ(code.find("ReduceScatter"), std::string::npos);
}

TEST(CodegenTest, ReduceGroupEmitsEpilogue) {
  Operator op = MatMulOp("mm", 4, 32, 4, DataType::kF16, "A", "B", "C");
  auto plan = ExecutionPlan::Create(op, {1, 1, 4}, {{1, 1}, {1, 1}, {1, 1}});
  ASSERT_TRUE(plan.has_value());
  std::string code = GenerateKernelCode(*plan);
  EXPECT_NE(code.find("ReduceScatter(C, /*rounds=*/3"), std::string::npos) << code;
}

TEST(CodegenTest, StridedConvIndexing) {
  Operator op =
      Conv2dOp("c1", 1, 2, 4, 4, 4, 3, 3, DataType::kF16, "I", "W", "O", /*stride=*/2);
  std::vector<std::int64_t> fop(op.axes().size(), 1);
  fop[static_cast<std::size_t>(op.FindAxis("f"))] = 2;
  std::vector<std::vector<std::int64_t>> ft = {{1, 1, 1, 1}, {1, 1, 1, 1}, {1, 1, 1, 1}};
  auto plan = ExecutionPlan::Create(op, fop, ft);
  ASSERT_TRUE(plan.has_value());
  std::string code = GenerateKernelCode(*plan);
  // Strided compound index of the input window.
  EXPECT_NE(code.find("I[b][c][2*h+kh][2*w+kw]"), std::string::npos) << code;
  EXPECT_NE(code.find("half"), std::string::npos);
}

TEST(CodegenTest, ModelCodeCoversAllOps) {
  Compiler compiler(SmallChip());
  Graph g("mlp");
  g.Add(MatMulOp("fc1", 32, 256, 512, DataType::kF16, "x", "w1", "h1"));
  g.Add(ElementwiseOp("act", {32, 512}, DataType::kF16, "h1", "h2"));
  g.Add(MatMulOp("fc2", 32, 512, 256, DataType::kF16, "h2", "w2", "y"));
  g.MarkWeight("w1");
  g.MarkWeight("w2");
  CompiledModel model = compiler.Compile(g);
  ASSERT_TRUE(model.fits);
  std::string code = GenerateModelCode(model, g);
  EXPECT_NE(code.find("build_fc1"), std::string::npos);
  EXPECT_NE(code.find("build_act"), std::string::npos);
  EXPECT_NE(code.find("build_fc2"), std::string::npos);
  EXPECT_NE(code.find("MapVertex"), std::string::npos);
  // The model header reports memory figures.
  EXPECT_NE(code.find("idle weights"), std::string::npos);
}

}  // namespace
}  // namespace t10
