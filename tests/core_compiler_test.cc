#include "src/core/compiler.h"

#include <gtest/gtest.h>

#include <chrono>

#include "src/ir/builder.h"
#include "src/ir/parser.h"
#include "src/obs/metrics.h"

namespace t10 {
namespace {

ChipSpec SmallChip(int cores = 64) {
  ChipSpec chip = ChipSpec::IpuMk2();
  chip.num_cores = cores;
  chip.cores_per_chip = cores;
  return chip;
}

Graph Mlp(std::int64_t batch = 32) {
  Graph g("mlp");
  g.Add(MatMulOp("fc1", batch, 256, 512, DataType::kF16, "x", "w1", "h1"));
  g.Add(ElementwiseOp("gelu", {batch, 512}, DataType::kF16, "h1", "h2", 8.0));
  g.Add(MatMulOp("fc2", batch, 512, 256, DataType::kF16, "h2", "w2", "y"));
  g.MarkWeight("w1");
  g.MarkWeight("w2");
  return g;
}

TEST(CompilerTest, CompilesMlpEndToEnd) {
  Compiler compiler(SmallChip());
  Graph graph = Mlp();
  CompiledModel model = compiler.Compile(graph);
  ASSERT_TRUE(model.fits);
  ASSERT_EQ(model.ops.size(), 3u);
  EXPECT_GT(model.TotalSeconds(), 0.0);
  EXPECT_GT(model.ComputeSeconds(), 0.0);
  EXPECT_GT(model.compile_wall_seconds, 0.0);
  for (const CompiledOp& op : model.ops) {
    EXPECT_LE(op.measured.per_core_bytes, SmallChip().core_memory_bytes);
    EXPECT_GT(op.pareto_count, 0);
  }
}

TEST(CompilerTest, PredictedCloseToMeasured) {
  Compiler compiler(SmallChip());
  Graph graph = Mlp();
  CompiledModel model = compiler.Compile(graph);
  ASSERT_TRUE(model.fits);
  for (const CompiledOp& op : model.ops) {
    const double predicted = op.predicted.total_seconds();
    const double measured = op.measured.total_seconds();
    EXPECT_NEAR(predicted / measured, 1.0, 0.25)
        << "op " << op.op_index << ": " << predicted << " vs " << measured;
  }
}

TEST(CompilerTest, SignatureCacheReusesSearches) {
  Compiler compiler(SmallChip());
  Graph g("stack");
  // Four identical layers: the second..fourth hit the cache.
  for (int i = 0; i < 4; ++i) {
    std::string in = i == 0 ? "x" : "h" + std::to_string(i - 1);
    g.Add(MatMulOp("fc" + std::to_string(i), 16, 128, 128, DataType::kF16, in,
                   "w" + std::to_string(i), "h" + std::to_string(i)));
    g.MarkWeight("w" + std::to_string(i));
  }
  const auto t0 = std::chrono::steady_clock::now();
  IntraOpResult first = compiler.SearchOp(g.op(0));
  const auto t1 = std::chrono::steady_clock::now();
  IntraOpResult second = compiler.SearchOp(g.op(1));
  const auto t2 = std::chrono::steady_clock::now();
  EXPECT_EQ(first.pareto.size(), second.pareto.size());
  // Cached search must be dramatically cheaper (no enumeration).
  const double cold = std::chrono::duration<double>(t1 - t0).count();
  const double warm = std::chrono::duration<double>(t2 - t1).count();
  EXPECT_LT(warm, cold);
  // Cached plans reference the *new* operator.
  EXPECT_EQ(&second.pareto.front().plan.op(), &g.op(1));
}

TEST(CompilerTest, CacheCountersMatchCachedSignatures) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  obs::Counter& hits = metrics.GetCounter("compiler.cache.hits");
  obs::Counter& misses = metrics.GetCounter("compiler.cache.misses");
  const std::int64_t hits_before = hits.value();
  const std::int64_t misses_before = misses.value();

  Compiler compiler(SmallChip());
  Graph g("stack");
  // Four identical layers and one distinct one: 2 misses, 3 hits.
  for (int i = 0; i < 4; ++i) {
    std::string in = i == 0 ? "x" : "h" + std::to_string(i - 1);
    g.Add(MatMulOp("fc" + std::to_string(i), 16, 128, 128, DataType::kF16, in,
                   "w" + std::to_string(i), "h" + std::to_string(i)));
    g.MarkWeight("w" + std::to_string(i));
  }
  g.Add(ElementwiseOp("act", {16, 128}, DataType::kF16, "h3", "y", 4.0));
  for (const Operator& op : g.ops()) {
    compiler.SearchOp(op);
  }
  EXPECT_EQ(misses.value() - misses_before, compiler.num_cached_signatures());
  EXPECT_EQ(compiler.num_cached_signatures(), 2);
  EXPECT_EQ(hits.value() - hits_before, 3);
}

TEST(CompilerTest, OversizedModelDoesNotFit) {
  ChipSpec chip = SmallChip(4);
  chip.core_memory_bytes = 32 * 1024;
  Compiler compiler(chip);
  Graph g("huge");
  g.Add(MatMulOp("fc", 64, 4096, 4096, DataType::kF16, "x", "w", "y"));
  g.MarkWeight("w");
  CompiledModel model = compiler.Compile(g);
  EXPECT_FALSE(model.fits);
  EXPECT_TRUE(model.ops.empty());
}

TEST(CompilerTest, TransitionChargedOnLayoutMismatch) {
  Compiler compiler(SmallChip());
  Graph graph = Mlp();
  CompiledModel model = compiler.Compile(graph);
  ASSERT_TRUE(model.fits);
  // First op consumes a graph input: never a transition.
  EXPECT_DOUBLE_EQ(model.ops[0].transition_seconds, 0.0);
  // Downstream ops may or may not match layouts, but transitions are small
  // relative to execution (paper §5).
  for (const CompiledOp& op : model.ops) {
    EXPECT_LT(op.transition_seconds, 0.5 * model.TotalSeconds());
  }
}

TEST(CompilerTest, ReconcileTrajectoryRecorded) {
  Compiler compiler(SmallChip());
  Graph graph = Mlp();
  CompiledModel model = compiler.Compile(graph);
  ASSERT_TRUE(model.fits);
  ASSERT_FALSE(model.reconcile_trajectory.empty());
  EXPECT_GE(model.idle_bytes_per_core, 0);
}

TEST(CompilerTest, InterOpOffMatchesFirstTrajectoryPoint) {
  CompileOptions options;
  options.inter_op_reconcile = false;
  Compiler compiler(SmallChip(), options);
  Graph graph = Mlp();
  CompiledModel model = compiler.Compile(graph);
  ASSERT_TRUE(model.fits);
  ASSERT_EQ(model.reconcile_trajectory.size(), 1u);
}

TEST(CompilerTest, EmptyGraphCompiles) {
  Compiler compiler(SmallChip());
  Graph g("empty");
  CompiledModel model = compiler.Compile(g);
  EXPECT_TRUE(model.fits);
  EXPECT_TRUE(model.ops.empty());
  EXPECT_DOUBLE_EQ(model.TotalSeconds(), 0.0);
}

TEST(CompilerTest, SignatureDistinguishesDtypeAndStride) {
  Compiler compiler(SmallChip());
  // Same shapes, different dtype: must not share a cache entry (footprints
  // differ), so the chosen plans' memory differs by the element size.
  Graph g("dtypes");
  g.Add(MatMulOp("f16", 32, 64, 64, DataType::kF16, "a0", "b0", "c0"));
  g.Add(MatMulOp("f32", 32, 64, 64, DataType::kF32, "a1", "b1", "c1"));
  g.Add(Conv2dOp("s1", 1, 4, 8, 8, 8, 3, 3, DataType::kF16, "i0", "w0", "o0", 1));
  g.Add(Conv2dOp("s2", 1, 4, 8, 8, 8, 3, 3, DataType::kF16, "i1", "w1", "o1", 2));
  for (const Operator& op : g.ops()) {
    compiler.SearchOp(op);
  }
  EXPECT_EQ(compiler.num_cached_signatures(), 4);
}

TEST(CompilerTest, MemoryPeakRecorded) {
  Compiler compiler(SmallChip());
  Graph graph = Mlp();
  CompiledModel model = compiler.Compile(graph);
  ASSERT_TRUE(model.fits);
  EXPECT_GT(model.memory_peak_bytes, 0);
  EXPECT_LE(model.memory_peak_bytes, SmallChip().core_memory_bytes);
}

TEST(CompilerTest, ParsedModelCompiles) {
  const char* text = R"(
    model parsed
    gather name=emb n=64 vocab=1000 embed=128 idx=ids table=tbl out=e weight=tbl
    matmul name=proj m=64 k=128 n=128 a=e b=w c=h weight=w
    unary  name=act shape=64x128 in=h out=y cost=4
  )";
  Graph graph = ParseModelText(text);
  Compiler compiler(SmallChip());
  CompiledModel model = compiler.Compile(graph);
  ASSERT_TRUE(model.fits);
  EXPECT_EQ(model.ops.size(), 3u);
}

}  // namespace
}  // namespace t10
