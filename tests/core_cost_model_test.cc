#include "src/core/cost_model.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"
#include "src/util/stats.h"

namespace t10 {
namespace {

class CostModelTest : public ::testing::Test {
 protected:
  CostModelTest()
      : truth_(ChipSpec::IpuMk2()), model_(FittedCostModel::Fit(truth_, 300, 17)) {}

  KernelGroundTruth truth_;
  FittedCostModel model_;
};

TEST_F(CostModelTest, ClassifyRoutesKernels) {
  SubTaskShape mm;
  mm.kind = OpKind::kContraction;
  mm.kernel_volume = 1;
  EXPECT_EQ(ClassifySubTask(mm), KernelClass::kMatMul);
  mm.kernel_volume = 9;
  EXPECT_EQ(ClassifySubTask(mm), KernelClass::kConv);
  SubTaskShape ew;
  ew.kind = OpKind::kElementwise;
  EXPECT_EQ(ClassifySubTask(ew), KernelClass::kElementwise);
}

// Fig 8: near-perfect accuracy for MatMul/elementwise/reduce, visibly worse
// for convolution (vendor black-box behaviour).
TEST_F(CostModelTest, MatMulFitNearPerfect) {
  EXPECT_GT(model_.RSquared(KernelClass::kMatMul), 0.995);
  EXPECT_GT(model_.RSquared(KernelClass::kElementwise), 0.995);
  EXPECT_GT(model_.RSquared(KernelClass::kReduce), 0.99);
}

TEST_F(CostModelTest, ConvFitWorseThanMatMul) {
  EXPECT_LT(model_.RSquared(KernelClass::kConv), model_.RSquared(KernelClass::kMatMul));
  // Still a usable signal (the paper: "even with slight inaccuracy, T10 can
  // still find sufficiently good execution plans").
  EXPECT_GT(model_.RSquared(KernelClass::kConv), 0.5);
}

TEST_F(CostModelTest, HeldOutMatMulErrorSmall) {
  auto samples = model_.HeldOutSamples(truth_, KernelClass::kMatMul, 100, 999);
  std::vector<double> actual;
  std::vector<double> predicted;
  for (const auto& s : samples) {
    actual.push_back(s.actual_seconds);
    predicted.push_back(s.predicted_seconds);
  }
  EXPECT_LT(MeanAbsolutePercentageError(actual, predicted), 8.0);
}

TEST_F(CostModelTest, HeldOutConvErrorLarger) {
  auto mm = model_.HeldOutSamples(truth_, KernelClass::kMatMul, 100, 999);
  auto conv = model_.HeldOutSamples(truth_, KernelClass::kConv, 100, 999);
  auto mape = [](const std::vector<FittedCostModel::Sample>& samples) {
    std::vector<double> actual;
    std::vector<double> predicted;
    for (const auto& s : samples) {
      actual.push_back(s.actual_seconds);
      predicted.push_back(s.predicted_seconds);
    }
    return MeanAbsolutePercentageError(actual, predicted);
  };
  EXPECT_GT(mape(conv), mape(mm));
}

TEST_F(CostModelTest, ShiftModelAccurate) {
  for (std::int64_t bytes : {64, 1024, 8192, 12000, 65536}) {
    double actual = truth_.ShiftSeconds(bytes);
    double predicted = model_.ShiftSeconds(bytes);
    EXPECT_NEAR(predicted / actual, 1.0, 0.05) << bytes << " bytes";
  }
  EXPECT_DOUBLE_EQ(model_.ShiftSeconds(0), 0.0);
}

TEST_F(CostModelTest, PredictionsArePositive) {
  Rng rng(5);
  for (int c = 0; c < kNumKernelClasses; ++c) {
    for (int i = 0; i < 50; ++i) {
      SubTaskShape shape = FittedCostModel::RandomShape(static_cast<KernelClass>(c), rng);
      EXPECT_GT(model_.SubTaskSeconds(shape), 0.0);
    }
  }
}

TEST_F(CostModelTest, CustomKernelOverrides) {
  FittedCostModel model = FittedCostModel::Fit(truth_, 100, 3);
  model.SetCustomKernel(KernelClass::kVendor,
                        [](const SubTaskShape&) { return 42.0; });
  SubTaskShape shape;
  shape.kind = OpKind::kVendor;
  shape.flops = 100;
  EXPECT_DOUBLE_EQ(model.SubTaskSeconds(shape), 42.0);
}

}  // namespace
}  // namespace t10
