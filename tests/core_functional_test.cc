// Numerical validation of compute-shift plans: every plan executed here runs
// the full per-core, per-step schedule with window-locality assertions and
// must reproduce the single-core reference bit-for-bit (FP32, tolerance for
// accumulation-order differences).

#include "src/core/functional.h"

#include <gtest/gtest.h>

#include "src/core/search.h"
#include "src/ir/builder.h"
#include "src/util/math_util.h"

namespace t10 {
namespace {

void ExpectTensorsNear(const HostTensor& a, const HostTensor& b, double tolerance = 1e-4) {
  ASSERT_EQ(a.shape, b.shape);
  for (std::size_t i = 0; i < a.data.size(); ++i) {
    ASSERT_NEAR(a.data[i], b.data[i], tolerance) << "element " << i;
  }
}

std::vector<HostTensor> RandomInputs(const Operator& op, std::uint64_t seed) {
  std::vector<HostTensor> inputs;
  for (std::size_t i = 0; i < op.inputs().size(); ++i) {
    inputs.push_back(RandomHostTensor(TensorShape(op.axes(), op.inputs()[i]), seed + i));
  }
  return inputs;
}

void CheckPlan(const Operator& op, const std::vector<std::int64_t>& fop,
               const std::vector<std::vector<std::int64_t>>& ft, std::uint64_t seed = 7) {
  auto plan = ExecutionPlan::Create(op, fop, ft);
  ASSERT_TRUE(plan.has_value()) << op.DebugString();
  std::vector<HostTensor> inputs = RandomInputs(op, seed);
  FunctionalStats stats;
  HostTensor got = ExecutePlanFunctionally(*plan, inputs, &stats);
  HostTensor want = ReferenceExecute(op, inputs);
  ExpectTensorsNear(got, want);
  EXPECT_EQ(stats.steps, plan->total_steps());
}

TEST(FunctionalTest, PaperFigure7MatMul) {
  Operator op = MatMulOp("mm", 2, 6, 3, DataType::kF32, "A", "B", "C");
  CheckPlan(op, {2, 3, 1}, {{1, 3}, {2, 1}, {1, 1}});
}

TEST(FunctionalTest, MatMulMismatchedWindows) {
  // Windows of length 2 (A) and 3 (B) with rp = 2: the Fig 7(d) alignment.
  Operator op = MatMulOp("mm", 4, 12, 6, DataType::kF32, "A", "B", "C");
  CheckPlan(op, {2, 3, 1}, {{1, 3}, {2, 1}, {1, 1}});
}

TEST(FunctionalTest, MatMulReplicatedWeights) {
  Operator op = MatMulOp("mm", 8, 8, 8, DataType::kF32, "A", "B", "C");
  CheckPlan(op, {4, 1, 1}, {{1, 1}, {1, 1}, {1, 1}});
}

TEST(FunctionalTest, MatMulSpatialReduction) {
  // k partitioned 4-way: partial sums accumulate across the reduce group.
  Operator op = MatMulOp("mm", 4, 16, 4, DataType::kF32, "A", "B", "C");
  CheckPlan(op, {2, 2, 4}, {{1, 1}, {1, 1}, {1, 1}});
}

TEST(FunctionalTest, MatMulRotationWithReduction) {
  // Both rotation (A along k) and a reduce group (k split 2-way).
  Operator op = MatMulOp("mm", 2, 8, 4, DataType::kF32, "A", "B", "C");
  CheckPlan(op, {2, 2, 2}, {{1, 2}, {1, 1}, {1, 1}});
}

TEST(FunctionalTest, MatMulTwoRotatingAxes) {
  Operator op = MatMulOp("mm", 4, 8, 8, DataType::kF32, "A", "B", "C");
  // A rotates along k (ring over n), B rotates along n (ring over m).
  CheckPlan(op, {4, 2, 1}, {{1, 2}, {1, 2}, {1, 1}});
}

TEST(FunctionalTest, MatMulMultiDimTemporal) {
  // A split along both m and k: a 2x2 ring of 4 cores.
  Operator op = MatMulOp("mm", 8, 8, 8, DataType::kF32, "A", "B", "C");
  CheckPlan(op, {1, 4, 1}, {{2, 2}, {1, 1}, {1, 1}});
}

TEST(FunctionalTest, MatMulWithPadding) {
  // m=5 split 2-way pads to 6; padded lanes must not contribute. A rotates
  // along k on the ring formed by the 3 n-partitions.
  Operator op = MatMulOp("mm", 5, 6, 3, DataType::kF32, "A", "B", "C");
  CheckPlan(op, {2, 3, 1}, {{1, 3}, {1, 1}, {1, 1}});
}

TEST(FunctionalTest, Conv2dSpatialOnly) {
  Operator op = Conv2dOp("conv", 1, 2, 4, 6, 6, 3, 3, DataType::kF32, "I", "W", "O");
  // Partition f and h.
  std::vector<std::int64_t> fop = {1, 2, 2, 1, 1, 1, 1};  // b,f,h,w,c,kh,kw.
  CheckPlan(op, fop, {{1, 1, 1, 1}, {1, 1, 1, 1}, {1, 1, 1, 1}});
}

TEST(FunctionalTest, Conv2dWeightRotation) {
  // Weight shared across h-partitions and rotated along its f dim.
  Operator op = Conv2dOp("conv", 1, 2, 4, 8, 4, 3, 3, DataType::kF32, "I", "W", "O");
  std::vector<std::int64_t> fop = {1, 1, 4, 1, 1, 1, 1};
  CheckPlan(op, fop, {{1, 1, 1, 1}, {4, 1, 1, 1}, {1, 1, 1, 1}});
}

TEST(FunctionalTest, Conv2dStrided) {
  // Stride-2 convolution: input windows are s*h + kh.
  Operator op =
      Conv2dOp("conv_s2", 1, 2, 4, 4, 4, 3, 3, DataType::kF32, "I", "W", "O", /*stride=*/2);
  // Input spatial dims: 2*(4-1)+3 = 9.
  EXPECT_EQ(TensorShape(op.axes(), op.inputs()[0]),
            (std::vector<std::int64_t>{1, 2, 9, 9}));
  std::vector<std::int64_t> fop = {1, 2, 2, 1, 1, 1, 1};
  CheckPlan(op, fop, {{1, 1, 1, 1}, {1, 1, 1, 1}, {1, 1, 1, 1}});
  // With weight rotation across the h-partitions.
  std::vector<std::int64_t> fop2 = {1, 1, 4, 1, 1, 1, 1};
  CheckPlan(op, fop2, {{1, 1, 1, 1}, {2, 1, 1, 1}, {1, 1, 1, 1}});
}

TEST(FunctionalTest, ElementwiseAndBinary) {
  Operator unary = ElementwiseOp("relu", {4, 6}, DataType::kF32, "x", "y");
  CheckPlan(unary, {2, 3}, {{1, 1}, {1, 1}});
  Operator binary = BinaryOp("add", {4, 6}, DataType::kF32, "a", "b", "c");
  CheckPlan(binary, {4, 2}, {{1, 1}, {1, 1}, {1, 1}});
}

TEST(FunctionalTest, ReduceSum) {
  Operator op = ReduceOp("sum", {4, 8}, DataType::kF32, "x", "y");
  CheckPlan(op, {2, 4}, {{1, 1}, {1}});
}

TEST(FunctionalTest, ShiftAccountingMatchesEvaluate) {
  ChipSpec chip = ChipSpec::IpuMk2();
  chip.num_cores = 16;
  GroundTruthTiming timing(chip);
  Operator op = MatMulOp("mm", 2, 6, 3, DataType::kF32, "A", "B", "C");
  auto plan = ExecutionPlan::Create(op, {2, 3, 1}, {{1, 3}, {2, 1}, {1, 1}});
  ASSERT_TRUE(plan.has_value());
  std::vector<HostTensor> inputs = RandomInputs(op, 3);
  FunctionalStats stats;
  ExecutePlanFunctionally(*plan, inputs, &stats);
  PlanMetrics metrics = plan->Evaluate(timing, chip);
  EXPECT_EQ(stats.shift_bytes_per_core, metrics.shift_bytes_per_core);
}

TEST(FunctionalTest, ReferenceMatMulMatchesManual) {
  Operator op = MatMulOp("mm", 2, 3, 2, DataType::kF32, "A", "B", "C");
  HostTensor a = HostTensor::Zeros({2, 3});
  HostTensor b = HostTensor::Zeros({3, 2});
  for (std::size_t i = 0; i < a.data.size(); ++i) {
    a.data[i] = static_cast<float>(i + 1);
  }
  for (std::size_t i = 0; i < b.data.size(); ++i) {
    b.data[i] = static_cast<float>(i);
  }
  HostTensor c = ReferenceExecute(op, {a, b});
  // C[0,0] = 1*0 + 2*2 + 3*4 = 16; C[1,1] = 4*1 + 5*3 + 6*5 = 49.
  EXPECT_FLOAT_EQ(c.at({0, 0}), 16.0f);
  EXPECT_FLOAT_EQ(c.at({1, 1}), 49.0f);
}

// Property sweep: every plan the intra-op search proposes for a set of small
// operators must execute functionally and match the reference. This ties the
// whole planning stack to ground-truth semantics.
class SearchPlansAreExecutable : public ::testing::TestWithParam<int> {};

TEST_P(SearchPlansAreExecutable, AllParetoPlansMatchReference) {
  ChipSpec chip = ChipSpec::IpuMk2();
  chip.num_cores = 12;
  chip.cores_per_chip = 12;
  GroundTruthTiming timing(chip);

  Operator op = [&]() -> Operator {
    switch (GetParam()) {
      case 0:
        return MatMulOp("mm", 6, 12, 4, DataType::kF32, "A", "B", "C");
      case 1:
        return MatMulOp("skinny", 1, 24, 12, DataType::kF32, "A", "B", "C");
      case 2:
        return Conv2dOp("conv", 1, 2, 6, 6, 6, 3, 3, DataType::kF32, "I", "W", "O");
      case 3:
        return BatchedMatMulOp("bmm", 2, 4, 6, 4, DataType::kF32, "A", "B", "C");
      default:
        return ReduceOp("sum", {6, 12}, DataType::kF32, "x", "y");
    }
  }();

  SearchConstraints constraints;
  constraints.parallelism_fraction = 0.5;  // Widen the frontier a bit.
  IntraOpResult result = SearchOperatorPlans(op, chip, timing, constraints);
  ASSERT_FALSE(result.pareto.empty());

  std::vector<HostTensor> inputs = RandomInputs(op, 11 + GetParam());
  HostTensor want = ReferenceExecute(op, inputs);
  int executed = 0;
  for (const PlanCandidate& candidate : result.pareto) {
    FunctionalStats stats;
    HostTensor got = ExecutePlanFunctionally(candidate.plan, inputs, &stats);
    ExpectTensorsNear(got, want, 1e-3);
    ++executed;
  }
  EXPECT_GT(executed, 0);
}

INSTANTIATE_TEST_SUITE_P(Ops, SearchPlansAreExecutable, ::testing::Range(0, 5));

}  // namespace
}  // namespace t10
