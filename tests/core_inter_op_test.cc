#include "src/core/inter_op.h"

#include <gtest/gtest.h>

namespace t10 {
namespace {

OpPlanOption Option(int index, double exec, std::int64_t active, std::int64_t weight) {
  OpPlanOption o;
  o.plan_index = index;
  o.exec_seconds = exec;
  o.active_bytes = active;
  o.weight_bytes = weight;
  o.weight_windows = {weight};
  return o;
}

ChipSpec TestChip() {
  ChipSpec chip = ChipSpec::IpuMk2();
  chip.sync_latency_seconds = 0.0;  // Make setup time pure transfer for easy math.
  return chip;
}

TEST(SetupSecondsTest, SamePlanIsFree) {
  ChipSpec chip = TestChip();
  OpPlanOption a = Option(0, 1.0, 100, 50);
  EXPECT_DOUBLE_EQ(SetupSeconds(a, a, chip), 0.0);
}

TEST(SetupSecondsTest, GrowingWindowCostsTransfer) {
  ChipSpec chip = TestChip();
  OpPlanOption idle = Option(0, 1.0, 100, 1000);
  OpPlanOption active = Option(1, 0.5, 200, 5500);
  // Fetch 4500 bytes at 5.5 GB/s.
  EXPECT_NEAR(SetupSeconds(idle, active, chip), 4500.0 / 5.5e9, 1e-15);
  // Shrinking costs nothing.
  EXPECT_DOUBLE_EQ(SetupSeconds(active, idle, chip), 0.0);
}

TEST(ReconcileTest, SingleOpPicksFastestFittingPlan) {
  ChipSpec chip = TestChip();
  InterOpOperator op;
  op.name = "mm";
  op.options = {Option(0, 2.0, 1000, 500), Option(1, 1.0, 5000, 2500),
                Option(2, 0.5, 20000, 10000)};
  InterOpSchedule schedule = ReconcileInterOp({op}, chip, 30000);
  ASSERT_TRUE(schedule.feasible);
  EXPECT_EQ(schedule.per_op[0].active_option, 2);
  // With enough search steps the idle layout converges to the active layout
  // (zero setup beats the tiny memory saving when memory is plentiful).
  EXPECT_DOUBLE_EQ(schedule.per_op[0].setup_seconds, 0.0);
}

TEST(ReconcileTest, MemoryPressureForcesSlowerPlan) {
  ChipSpec chip = TestChip();
  InterOpOperator op;
  op.name = "mm";
  op.options = {Option(0, 2.0, 1000, 500), Option(1, 0.5, 20000, 10000)};
  InterOpSchedule schedule = ReconcileInterOp({op}, chip, 1500);
  ASSERT_TRUE(schedule.feasible);
  EXPECT_EQ(schedule.per_op[0].active_option, 0);
}

TEST(ReconcileTest, InfeasibleWhenNothingFits) {
  ChipSpec chip = TestChip();
  InterOpOperator op;
  op.name = "huge";
  op.options = {Option(0, 1.0, 100000, 50000)};
  InterOpSchedule schedule = ReconcileInterOp({op}, chip, 1000);
  EXPECT_FALSE(schedule.feasible);
}

TEST(ReconcileTest, TradesIdleMemoryForSetupTime) {
  ChipSpec chip = TestChip();
  // Two ops; op A has a huge setup unless its idle layout is enlarged.
  InterOpOperator a;
  a.name = "a";
  a.options = {Option(0, 1.0, 60000, 1000), Option(1, 0.9, 120000, 110000)};
  InterOpOperator b;
  b.name = "b";
  b.options = {Option(0, 1.0, 50000, 2000)};
  const std::int64_t budget = 400000;

  InterOpSchedule greedy = ReconcileInterOp({a, b}, chip, budget);
  InterOpSchedule roller_style = ReconcileInterOp({a, b}, chip, budget, /*max_steps=*/1);
  ASSERT_TRUE(greedy.feasible);
  ASSERT_TRUE(roller_style.feasible);
  // The greedy policy must be at least as good, and here strictly better:
  // op A's idle layout grows to match its fast active plan, killing the
  // setup transfer of ~108KB.
  EXPECT_LT(greedy.total_seconds, roller_style.total_seconds);
  EXPECT_GT(greedy.idle_bytes_per_core, roller_style.idle_bytes_per_core);
}

TEST(ReconcileTest, TrajectoryIsMonotoneInIdleMemory) {
  ChipSpec chip = TestChip();
  InterOpOperator a;
  a.name = "a";
  a.options = {Option(0, 1.0, 5000, 100), Option(1, 0.8, 9000, 4000),
               Option(2, 0.7, 15000, 8000)};
  InterOpOperator b;
  b.name = "b";
  b.options = {Option(0, 2.0, 8000, 200), Option(1, 1.5, 20000, 9000)};
  InterOpSchedule schedule = ReconcileInterOp({a, b}, chip, 60000);
  ASSERT_TRUE(schedule.feasible);
  ASSERT_GE(schedule.trajectory.size(), 2u);
  for (std::size_t i = 1; i < schedule.trajectory.size(); ++i) {
    EXPECT_GT(schedule.trajectory[i].idle_bytes_per_core,
              schedule.trajectory[i - 1].idle_bytes_per_core);
  }
  // The chosen schedule matches the best trajectory point.
  double best = schedule.trajectory.front().total_seconds;
  for (const ReconcileStep& step : schedule.trajectory) {
    if (step.feasible) {
      best = std::min(best, step.total_seconds);
    }
  }
  EXPECT_DOUBLE_EQ(schedule.total_seconds, best);
}

TEST(ReconcileTest, EmptyModelIsFeasible) {
  InterOpSchedule schedule = ReconcileInterOp({}, TestChip(), 1000);
  EXPECT_TRUE(schedule.feasible);
  EXPECT_DOUBLE_EQ(schedule.total_seconds, 0.0);
}

}  // namespace
}  // namespace t10
