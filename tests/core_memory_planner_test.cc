#include "src/core/memory_planner.h"

#include <gtest/gtest.h>

#include "src/ir/builder.h"
#include "src/models/zoo.h"

namespace t10 {
namespace {

ChipSpec SmallChip(int cores = 64) {
  ChipSpec chip = ChipSpec::IpuMk2();
  chip.num_cores = cores;
  chip.cores_per_chip = cores;
  return chip;
}

Graph DeepMlp(int layers, std::int64_t batch = 32) {
  Graph g("deep-mlp");
  std::string x = "x";
  for (int i = 0; i < layers; ++i) {
    const std::string p = "fc" + std::to_string(i);
    g.Add(MatMulOp(p, batch, 256, 256, DataType::kF16, x, p + "_w", p + "_y"));
    g.MarkWeight(p + "_w");
    g.Add(ElementwiseOp(p + "_act", {batch, 256}, DataType::kF16, p + "_y", p + "_a"));
    x = p + "_a";
  }
  return g;
}

TEST(MemoryPlannerTest, PlanFitsAndReusesMemory) {
  ChipSpec chip = SmallChip();
  Compiler compiler(chip);
  Graph graph = DeepMlp(8);
  CompiledModel model = compiler.Compile(graph);
  ASSERT_TRUE(model.fits);
  MemoryPlan plan = PlanMemory(model, graph, chip);
  ASSERT_TRUE(plan.fits);
  EXPECT_LE(plan.peak_bytes, chip.core_memory_bytes);
  EXPECT_GT(plan.persistent_bytes, chip.shift_buffer_bytes);
  // Liveness reuse: the peak is well below a reuse-free layout, because the
  // 8 layers' activations never coexist.
  EXPECT_LT(plan.peak_bytes, plan.NaiveBytes());
}

TEST(MemoryPlannerTest, IntervalsCoverAllTensors) {
  ChipSpec chip = SmallChip();
  Compiler compiler(chip);
  Graph graph = DeepMlp(3);
  CompiledModel model = compiler.Compile(graph);
  ASSERT_TRUE(model.fits);
  MemoryPlan plan = PlanMemory(model, graph, chip);
  // shift buffer + 3 idle weight layouts + (maybe) setup deltas + 7
  // activation intervals (x, y/a per layer).
  int persistent = 0;
  int activations = 0;
  for (const MemoryInterval& interval : plan.intervals) {
    EXPECT_GE(interval.offset, 0) << interval.label;
    EXPECT_GT(interval.bytes, 0) << interval.label;
    EXPECT_LE(interval.first_op, interval.last_op) << interval.label;
    if (interval.persistent) {
      ++persistent;
    }
    if (interval.label.find("weights") == std::string::npos &&
        interval.label != "shift_buffer") {
      ++activations;
    }
  }
  EXPECT_EQ(persistent, 1 + 3);  // Shift buffer + 3 weight layouts.
  EXPECT_EQ(activations, 7);     // x + 3x(y, a).
}

TEST(MemoryPlannerTest, NonOverlappingLiveIntervals) {
  ChipSpec chip = SmallChip();
  Compiler compiler(chip);
  Graph graph = DeepMlp(5);
  CompiledModel model = compiler.Compile(graph);
  ASSERT_TRUE(model.fits);
  MemoryPlan plan = PlanMemory(model, graph, chip);
  ASSERT_TRUE(plan.fits);
  // Any two intervals live at the same op must not overlap in address space.
  for (std::size_t i = 0; i < plan.intervals.size(); ++i) {
    for (std::size_t j = i + 1; j < plan.intervals.size(); ++j) {
      const MemoryInterval& a = plan.intervals[i];
      const MemoryInterval& b = plan.intervals[j];
      const bool time_overlap = a.first_op <= b.last_op && b.first_op <= a.last_op;
      if (!time_overlap) {
        continue;
      }
      const bool space_overlap = a.offset < b.offset + b.bytes && b.offset < a.offset + a.bytes;
      EXPECT_FALSE(space_overlap) << a.label << " overlaps " << b.label;
    }
  }
}

TEST(MemoryPlannerTest, WeightsDominatePersistentForLlm) {
  ChipSpec chip = ChipSpec::IpuMk2();
  Compiler compiler(chip);
  Graph graph = BuildOpt1p3b(4);
  CompiledModel model = compiler.Compile(graph);
  ASSERT_TRUE(model.fits);
  MemoryPlan plan = PlanMemory(model, graph, chip);
  ASSERT_TRUE(plan.fits);
  EXPECT_GT(plan.persistent_bytes, plan.peak_bytes / 2);
}

TEST(MemoryPlannerTest, UnfitModelReported) {
  ChipSpec chip = SmallChip(4);
  chip.core_memory_bytes = 48 * 1024;
  Compiler compiler(chip);
  Graph g("big");
  g.Add(MatMulOp("fc", 64, 2048, 2048, DataType::kF16, "x", "w", "y"));
  g.MarkWeight("w");
  CompiledModel model = compiler.Compile(g);
  MemoryPlan plan = PlanMemory(model, g, chip);
  EXPECT_FALSE(plan.fits);
}

}  // namespace
}  // namespace t10
