// Determinism of the parallel intra-op search: compiling the same graph with
// --jobs=1 and --jobs=8 must produce a byte-identical CompiledModel. The CI
// TSan job runs this test to catch data races in the fan-out as well.

#include <gtest/gtest.h>

#include <string>

#include "src/core/compiler.h"
#include "src/ir/builder.h"
#include "src/obs/metrics.h"

namespace t10 {
namespace {

ChipSpec SmallChip(int cores = 64) {
  ChipSpec chip = ChipSpec::IpuMk2();
  chip.num_cores = cores;
  chip.cores_per_chip = cores;
  return chip;
}

Graph Mlp(std::int64_t batch = 32) {
  Graph g("mlp");
  g.Add(MatMulOp("fc1", batch, 256, 512, DataType::kF16, "x", "w1", "h1"));
  g.Add(ElementwiseOp("gelu", {batch, 512}, DataType::kF16, "h1", "h2", 8.0));
  g.Add(MatMulOp("fc2", batch, 512, 256, DataType::kF16, "h2", "w2", "y"));
  g.MarkWeight("w1");
  g.MarkWeight("w2");
  return g;
}

// A wider graph so the parallel fan-out actually has >1 distinct signature
// in flight at once.
Graph WideStack() {
  Graph g("wide");
  std::string in = "x";
  for (int i = 0; i < 6; ++i) {
    const std::string w = "w" + std::to_string(i);
    const std::string out = "h" + std::to_string(i);
    // Vary the inner dimension so every layer has a distinct signature.
    g.Add(MatMulOp("fc" + std::to_string(i), 16, 128 + 32 * i, 128 + 32 * (i + 1),
                   DataType::kF16, in, w, out));
    g.MarkWeight(w);
    in = out;
  }
  g.Add(ElementwiseOp("act", {16, 128 + 32 * 6}, DataType::kF16, in, "y", 8.0));
  return g;
}

std::string CompileFingerprint(const Graph& graph, int jobs) {
  CompileOptions options;
  options.jobs = jobs;
  Compiler compiler(SmallChip(), options);
  CompiledModel model = compiler.Compile(graph);
  EXPECT_TRUE(model.fits);
  return model.Fingerprint();
}

TEST(ParallelCompileTest, MlpIsBitDeterministicAcrossJobCounts) {
  const Graph graph = Mlp();
  const std::string serial = CompileFingerprint(graph, 1);
  EXPECT_EQ(serial, CompileFingerprint(graph, 2));
  EXPECT_EQ(serial, CompileFingerprint(graph, 8));
}

TEST(ParallelCompileTest, WideStackIsBitDeterministicAcrossJobCounts) {
  const Graph graph = WideStack();
  const std::string serial = CompileFingerprint(graph, 1);
  EXPECT_EQ(serial, CompileFingerprint(graph, 8));
}

TEST(ParallelCompileTest, DefaultJobsZeroMeansHardwareConcurrency) {
  const Graph graph = Mlp();
  const std::string serial = CompileFingerprint(graph, 1);
  EXPECT_EQ(serial, CompileFingerprint(graph, 0));
}

TEST(ParallelCompileTest, ParallelCompileKeepsCacheCounterContract) {
  // The hit/miss funnel must not depend on the worker count: the demo-style
  // graph has 3 distinct signatures, so a fresh compile reports 3 misses
  // regardless of jobs.
  for (int jobs : {1, 8}) {
    obs::MetricsRegistry::Global().Reset();
    CompileOptions options;
    options.jobs = jobs;
    Compiler compiler(SmallChip(), options);
    const Graph graph = Mlp();
    CompiledModel model = compiler.Compile(graph);
    ASSERT_TRUE(model.fits);
    EXPECT_EQ(
        obs::MetricsRegistry::Global().GetCounter("compiler.cache.misses").value(),
        3)
        << "jobs=" << jobs;
  }
  obs::MetricsRegistry::Global().Reset();
}

TEST(ParallelCompileTest, ReconcileTrajectoryIdenticalAcrossJobCounts) {
  const Graph graph = WideStack();
  CompileOptions serial_opts;
  serial_opts.jobs = 1;
  Compiler serial(SmallChip(), serial_opts);
  CompiledModel a = serial.Compile(graph);

  CompileOptions parallel_opts;
  parallel_opts.jobs = 8;
  Compiler parallel(SmallChip(), parallel_opts);
  CompiledModel b = parallel.Compile(graph);

  ASSERT_TRUE(a.fits);
  ASSERT_TRUE(b.fits);
  ASSERT_EQ(a.reconcile_trajectory.size(), b.reconcile_trajectory.size());
  for (std::size_t i = 0; i < a.reconcile_trajectory.size(); ++i) {
    EXPECT_EQ(a.reconcile_trajectory[i].idle_bytes_per_core,
              b.reconcile_trajectory[i].idle_bytes_per_core);
    EXPECT_EQ(a.reconcile_trajectory[i].total_seconds,
              b.reconcile_trajectory[i].total_seconds);
    EXPECT_EQ(a.reconcile_trajectory[i].feasible, b.reconcile_trajectory[i].feasible);
  }
}

}  // namespace
}  // namespace t10
