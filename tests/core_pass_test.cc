// PassManager mechanics (Continue/Stop/RetryFrom, run caps, verify hooks)
// and pipeline equivalence with the Compiler driver.

#include "src/core/pass/pass.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/compiler.h"
#include "src/core/pass/compilation_context.h"
#include "src/ir/builder.h"
#include "src/obs/metrics.h"
#include "src/verify/verifier.h"

namespace t10 {
namespace {

ChipSpec SmallChip(int cores = 64) {
  ChipSpec chip = ChipSpec::IpuMk2();
  chip.num_cores = cores;
  chip.cores_per_chip = cores;
  return chip;
}

Graph Mlp(std::int64_t batch = 32) {
  Graph g("mlp");
  g.Add(MatMulOp("fc1", batch, 256, 512, DataType::kF16, "x", "w1", "h1"));
  g.Add(ElementwiseOp("gelu", {batch, 512}, DataType::kF16, "h1", "h2", 8.0));
  g.Add(MatMulOp("fc2", batch, 512, 256, DataType::kF16, "h2", "w2", "y"));
  g.MarkWeight("w1");
  g.MarkWeight("w2");
  return g;
}

// PassManager::Run requires a live graph and resources even when the passes
// under test never touch them.
struct TestContext {
  Graph graph = Mlp();
  CompilerResources resources{SmallChip(), CompileOptions{}};
  CompilationContext ctx;

  TestContext() {
    ctx.graph = &graph;
    ctx.resources = &resources;
    ctx.model.model_name = graph.name();
  }
};

// A scriptable pass: appends its name to a shared trace and returns the next
// scripted result each time it runs (Continue once the script runs out).
class FakePass : public Pass {
 public:
  FakePass(const char* name, std::vector<std::string>* trace,
           std::vector<PassResult> script = {})
      : name_(name), trace_(trace), script_(std::move(script)) {}

  const char* name() const override { return name_; }

  PassResult Run(CompilationContext&) override {
    trace_->push_back(name_);
    if (next_ < script_.size()) {
      return script_[next_++];
    }
    return PassResult::Continue();
  }

 private:
  const char* name_;
  std::vector<std::string>* trace_;
  std::vector<PassResult> script_;
  std::size_t next_ = 0;
};

TEST(PassManagerTest, StandardPipelineNamesMatchCompiler) {
  const std::vector<std::string> expected = {
      pass_names::kFitCostModel, pass_names::kIntraOpSearch,
      pass_names::kInterOpReconcile, pass_names::kMemoryPlan,
      pass_names::kFinalize};
  EXPECT_EQ(BuildCompilerPipeline().PassNames(), expected);
  EXPECT_EQ(Compiler::PassNames(), expected);
}

TEST(PassManagerTest, RunsPassesInOrder) {
  std::vector<std::string> trace;
  PassManager pm;
  pm.AddPass(std::make_unique<FakePass>("a", &trace));
  pm.AddPass(std::make_unique<FakePass>("b", &trace));
  pm.AddPass(std::make_unique<FakePass>("c", &trace));
  TestContext t;
  pm.Run(t.ctx);
  EXPECT_EQ(trace, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(PassManagerTest, StopEndsThePipelineEarly) {
  std::vector<std::string> trace;
  PassManager pm;
  pm.AddPass(std::make_unique<FakePass>("a", &trace));
  pm.AddPass(std::make_unique<FakePass>(
      "b", &trace, std::vector<PassResult>{PassResult::Stop()}));
  pm.AddPass(std::make_unique<FakePass>("c", &trace));
  TestContext t;
  pm.Run(t.ctx);
  EXPECT_EQ(trace, (std::vector<std::string>{"a", "b"}));
}

TEST(PassManagerTest, RetryFromJumpsBackToEarlierPass) {
  std::vector<std::string> trace;
  PassManager pm;
  pm.AddPass(std::make_unique<FakePass>("a", &trace));
  pm.AddPass(std::make_unique<FakePass>("b", &trace));
  // First run retries from "b", second run continues.
  pm.AddPass(std::make_unique<FakePass>(
      "c", &trace,
      std::vector<PassResult>{PassResult::RetryFrom("b"), PassResult::Continue()}));
  TestContext t;
  pm.Run(t.ctx);
  EXPECT_EQ(trace, (std::vector<std::string>{"a", "b", "c", "b", "c"}));
}

TEST(PassManagerTest, StartPassSkipsEarlierPasses) {
  std::vector<std::string> trace;
  PassManager pm;
  pm.AddPass(std::make_unique<FakePass>("a", &trace));
  pm.AddPass(std::make_unique<FakePass>("b", &trace));
  pm.AddPass(std::make_unique<FakePass>("c", &trace));
  TestContext t;
  pm.Run(t.ctx, "b");
  EXPECT_EQ(trace, (std::vector<std::string>{"b", "c"}));
}

TEST(PassManagerDeathTest, RetryFromLaterPassIsFatal) {
  std::vector<std::string> trace;
  PassManager pm;
  pm.AddPass(std::make_unique<FakePass>(
      "a", &trace, std::vector<PassResult>{PassResult::RetryFrom("b")}));
  pm.AddPass(std::make_unique<FakePass>("b", &trace));
  TestContext t;
  EXPECT_DEATH(pm.Run(t.ctx), "earlier pass");
}

TEST(PassManagerDeathTest, UnknownStartPassIsFatal) {
  std::vector<std::string> trace;
  PassManager pm;
  pm.AddPass(std::make_unique<FakePass>("a", &trace));
  TestContext t;
  EXPECT_DEATH(pm.Run(t.ctx, "nonexistent"), "unknown pass");
}

TEST(PassManagerDeathTest, EndlessRetryLoopHitsTheRunCap) {
  std::vector<std::string> trace;
  PassManager pm;
  pm.AddPass(std::make_unique<FakePass>("a", &trace));
  // "b" always retries from "a": without the cap this would never end.
  std::vector<PassResult> forever(
      static_cast<std::size_t>(PassManager::kMaxPassRuns) + 2,
      PassResult::RetryFrom("a"));
  pm.AddPass(std::make_unique<FakePass>("b", &trace, std::move(forever)));
  TestContext t;
  EXPECT_DEATH(pm.Run(t.ctx), "did not converge");
}

// A pass whose verification always reports an error diagnostic.
class BadVerifyPass : public Pass {
 public:
  const char* name() const override { return "bad_verify"; }
  PassResult Run(CompilationContext&) override { return PassResult::Continue(); }
  verify::VerifyResult Verify(const CompilationContext&) const override {
    verify::VerifyResult result;
    verify::Diagnostic diagnostic;
    diagnostic.rule = "test.always-fails";
    diagnostic.object = "bad_verify";
    diagnostic.message = "synthetic verification failure";
    result.Add(std::move(diagnostic));
    return result;
  }
};

TEST(PassManagerDeathTest, FailingVerifyHookIsFatalWhenEnabled) {
  ::setenv("T10_INTERNAL_VERIFY", "1", 1);
  if (!verify::InternalVerifyEnabled()) {
    // The enable flag is latched on first use; an earlier disabled read in
    // this (release-built) process wins and the hook cannot fire.
    GTEST_SKIP() << "internal verification latched off in this process";
  }
  PassManager pm;
  pm.AddPass(std::make_unique<BadVerifyPass>());
  TestContext t;
  EXPECT_DEATH(pm.Run(t.ctx), "always-fails");
}

TEST(PassPipelineTest, ManualPipelineMatchesCompilerDriver) {
  const Graph graph = Mlp();
  Compiler compiler(SmallChip());
  CompiledModel via_driver = compiler.Compile(graph);
  ASSERT_TRUE(via_driver.fits);

  // Driving the standard pipeline by hand over a fresh context must decide
  // exactly the same model.
  TestContext t;
  BuildCompilerPipeline().Run(t.ctx);
  ASSERT_TRUE(t.ctx.model.fits);
  EXPECT_EQ(t.ctx.model.Fingerprint(), via_driver.Fingerprint());
}

TEST(PassPipelineTest, PipelineRecordsPerPassRunCounters) {
  obs::MetricsRegistry::Global().Reset();
  const Graph graph = Mlp();
  Compiler compiler(SmallChip());
  ASSERT_TRUE(compiler.Compile(graph).fits);
  auto runs = [](const std::string& pass) {
    return obs::MetricsRegistry::Global()
        .GetCounter("compiler.pass." + pass + ".runs")
        .value();
  };
  EXPECT_EQ(runs(pass_names::kFitCostModel), 1);
  EXPECT_EQ(runs(pass_names::kIntraOpSearch), 1);
  EXPECT_GE(runs(pass_names::kInterOpReconcile), 1);
  EXPECT_GE(runs(pass_names::kMemoryPlan), 1);
  EXPECT_EQ(runs(pass_names::kFinalize), 1);
  obs::MetricsRegistry::Global().Reset();
}

TEST(PassPipelineTest, CompileFromIntraOpSearchMatchesFullCompile) {
  // ReplanDegraded restarts the pipeline at IntraOpSearch; on a healthy chip
  // that shortcut must decide the same model as a full compile (FitCostModel
  // only forces lazily-created resources).
  const Graph graph = Mlp();
  Compiler full(SmallChip());
  CompiledModel full_model = full.Compile(graph);
  ASSERT_TRUE(full_model.fits);

  Compiler restarted(SmallChip());
  CompiledModel restarted_model =
      restarted.CompileFrom(graph, pass_names::kIntraOpSearch);
  ASSERT_TRUE(restarted_model.fits);
  EXPECT_EQ(restarted_model.Fingerprint(), full_model.Fingerprint());
}

}  // namespace
}  // namespace t10
