#include "src/core/pipeline.h"

#include <gtest/gtest.h>

#include "src/models/zoo.h"

namespace t10 {
namespace {

TEST(PipelineTest, Opt13bAcrossChips) {
  ChipSpec chip = ChipSpec::IpuMk2();
  Compiler compiler(chip);
  Graph layer = BuildOpt13b(1);
  CompiledModel model = compiler.Compile(layer);
  ASSERT_TRUE(model.fits);
  // OPT-13B has 40 layers at ~650MB each: several chips needed.
  PipelineEstimate estimate = EstimatePipeline(model, layer, 40, chip);
  ASSERT_TRUE(estimate.feasible);
  EXPECT_GE(estimate.num_chips, 20);
  EXPECT_LE(estimate.num_chips, 40);
  EXPECT_EQ(estimate.layers_per_chip * estimate.num_chips >= 40, true);
  // Inter-chip boundary is tiny relative to layer latency (paper §6.7:
  // "the inter-chip communication overhead between pipeline stages is
  // negligible").
  EXPECT_LT(estimate.interchip_seconds, 0.1 * estimate.layer_seconds);
  EXPECT_GT(estimate.tokens_per_second, 0.0);
  // End-to-end dominated by per-layer time.
  EXPECT_NEAR(estimate.end_to_end_seconds, 40.0 * estimate.layer_seconds,
              0.15 * estimate.end_to_end_seconds);
}

TEST(PipelineTest, SmallModelFitsOneChip) {
  ChipSpec chip = ChipSpec::IpuMk2();
  Compiler compiler(chip);
  Graph layer = BuildRetNet1p3b(1);
  CompiledModel model = compiler.Compile(layer);
  ASSERT_TRUE(model.fits);
  PipelineEstimate estimate = EstimatePipeline(model, layer, 4, chip);
  ASSERT_TRUE(estimate.feasible);
  EXPECT_EQ(estimate.num_chips, 1);
  EXPECT_EQ(estimate.layers_per_chip, 4);
}

TEST(PipelineTest, ThroughputImprovesWithMoreChips) {
  ChipSpec chip = ChipSpec::IpuMk2();
  Compiler compiler(chip);
  Graph layer = BuildOpt6p7b(1);
  CompiledModel model = compiler.Compile(layer);
  ASSERT_TRUE(model.fits);
  PipelineEstimate shallow = EstimatePipeline(model, layer, 8, chip);
  PipelineEstimate deep = EstimatePipeline(model, layer, 32, chip);
  ASSERT_TRUE(shallow.feasible);
  ASSERT_TRUE(deep.feasible);
  // More layers -> more chips, but steady-state throughput per stage is
  // unchanged (same layers per chip).
  EXPECT_GT(deep.num_chips, shallow.num_chips);
  EXPECT_NEAR(deep.tokens_per_second, shallow.tokens_per_second,
              0.3 * shallow.tokens_per_second);
}

TEST(PipelineTest, InfeasibleWithoutFit) {
  CompiledModel unfit;
  unfit.fits = false;
  Graph g("empty");
  PipelineEstimate estimate = EstimatePipeline(unfit, g, 10, ChipSpec::IpuMk2());
  EXPECT_FALSE(estimate.feasible);
}

}  // namespace
}  // namespace t10
