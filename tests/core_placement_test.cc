// Placement-geometry property tests (paper §4.4): for every valid plan, the
// initial placement must (a) assign each ring every window partition exactly
// once, (b) give co-rotating tensors co-starting windows, and (c) keep each
// core's sub-task inside all of its windows at every step — properties the
// functional tests exercise end-to-end and these tests check structurally.

#include "src/core/placement.h"

#include <gtest/gtest.h>

#include <set>

#include "src/core/search.h"
#include "src/ir/builder.h"

namespace t10 {
namespace {

void CheckGeometry(const ExecutionPlan& plan) {
  PlanGeometry geometry(plan);
  const int cores = geometry.num_cores();

  // Coordinates decode/encode consistently and offsets are slice-aligned.
  for (int c = 0; c < cores; ++c) {
    const auto& coord = geometry.Coord(c);
    std::int64_t encoded = 0;
    for (std::size_t a = 0; a < coord.size(); ++a) {
      EXPECT_GE(coord[a], 0);
      EXPECT_LT(coord[a], plan.fop()[a]);
      encoded = encoded * plan.fop()[a] + coord[a];
      EXPECT_EQ(geometry.Offset(c)[a], coord[a] * plan.axis_slices()[a]);
    }
    EXPECT_EQ(encoded, c);
  }

  for (int ti = 0; ti < geometry.num_operands(); ++ti) {
    const RTensorPlan& tp = plan.tensors()[static_cast<std::size_t>(ti)];
    // Every (sub-tensor, ring, position) triple is hit exactly once.
    std::set<std::tuple<std::int64_t, std::int64_t, std::int64_t>> seen;
    for (int c = 0; c < cores; ++c) {
      const std::int64_t rank = geometry.SharingRank(ti, c);
      EXPECT_GE(rank, 0);
      EXPECT_LT(rank, tp.share_cores);
      EXPECT_EQ(geometry.RingIndex(ti, c), rank / tp.ring_size);
      EXPECT_EQ(geometry.RingPosition(ti, c), rank % tp.ring_size);
      auto key = std::make_tuple(geometry.SubTensorIndex(ti, c), geometry.RingIndex(ti, c),
                                 geometry.RingPosition(ti, c));
      EXPECT_TRUE(seen.insert(key).second) << "duplicate placement";
    }
    EXPECT_EQ(static_cast<std::int64_t>(seen.size()), cores);
  }

  // Within each ring, the windows tile the sub-tensor: the phases of ring
  // members along the rotating axis, sorted, step by exactly the window.
  for (int ti = 0; ti < geometry.num_operands(); ++ti) {
    const RTensorPlan& tp = plan.tensors()[static_cast<std::size_t>(ti)];
    if (tp.rotating_dims.size() != 1) {
      continue;
    }
    const int d = tp.rotating_dims.front();
    const int axis = geometry.Operand(ti).dims[d].axis;
    const std::int64_t w = tp.window[static_cast<std::size_t>(d)];
    std::map<std::pair<std::int64_t, std::int64_t>, std::set<std::int64_t>> ring_starts;
    for (int c = 0; c < cores; ++c) {
      ring_starts[{geometry.SubTensorIndex(ti, c), geometry.RingIndex(ti, c)}].insert(
          geometry.Phase(c)[static_cast<std::size_t>(axis)]);
    }
    for (const auto& [key, starts] : ring_starts) {
      ASSERT_EQ(static_cast<std::int64_t>(starts.size()), tp.ring_size);
      std::int64_t expected = *starts.begin();
      for (std::int64_t start : starts) {
        EXPECT_EQ(start % w, *starts.begin() % w) << "windows must be w-strided";
        EXPECT_EQ(start, expected);
        expected += w;
      }
    }
  }

  // Step counters sweep every combination exactly once.
  std::set<std::vector<std::int64_t>> counter_set;
  for (std::int64_t s = 0; s < plan.total_steps(); ++s) {
    EXPECT_TRUE(counter_set.insert(geometry.StepCounters(s)).second);
  }
}

TEST(PlacementTest, Figure7Geometry) {
  Operator op = MatMulOp("mm", 2, 6, 3, DataType::kF32, "A", "B", "C");
  auto plan = ExecutionPlan::Create(op, {2, 3, 1}, {{1, 3}, {2, 1}, {1, 1}});
  ASSERT_TRUE(plan.has_value());
  CheckGeometry(*plan);
  PlanGeometry geometry(*plan);
  // Co-start: A and B windows begin at the same phase on axis k for every
  // core (the property that makes Fig 7(d) executable).
  for (int c = 0; c < 6; ++c) {
    const std::int64_t phi = geometry.Phase(c)[static_cast<std::size_t>(op.FindAxis("k"))];
    EXPECT_GE(phi, 0);
    EXPECT_LT(phi, 6);
  }
}

TEST(PlacementTest, ReplicatedRingsShareStarts) {
  // P=8 shared cores, ring size 4, 2 replicas: both rings must enumerate the
  // same 4 window starts.
  Operator op = MatMulOp("mm", 8, 16, 8, DataType::kF32, "A", "B", "C");
  auto plan = ExecutionPlan::Create(op, {1, 8, 1}, {{1, 4}, {1, 1}, {1, 1}});
  ASSERT_TRUE(plan.has_value());
  CheckGeometry(*plan);
}

// Every plan the search proposes for a mix of operators must satisfy the
// structural placement invariants.
class SearchedPlacements : public ::testing::TestWithParam<int> {};

TEST_P(SearchedPlacements, AllParetoPlansValid) {
  ChipSpec chip = ChipSpec::IpuMk2();
  chip.num_cores = 24;
  chip.cores_per_chip = 24;
  GroundTruthTiming timing(chip);
  Operator op = [&]() -> Operator {
    switch (GetParam()) {
      case 0:
        return MatMulOp("mm", 8, 24, 6, DataType::kF32, "A", "B", "C");
      case 1:
        return Conv2dOp("conv", 2, 4, 6, 8, 8, 3, 3, DataType::kF32, "I", "W", "O");
      case 2:
        return BatchedMatMulOp("bmm", 3, 4, 8, 4, DataType::kF32, "A", "B", "C");
      default:
        return GatherOp("g", 24, 100, 16, DataType::kF16, "i", "t", "o");
    }
  }();
  SearchConstraints constraints;
  constraints.parallelism_fraction = 0.5;
  IntraOpResult result = SearchOperatorPlans(op, chip, timing, constraints);
  ASSERT_FALSE(result.pareto.empty());
  for (const PlanCandidate& candidate : result.pareto) {
    CheckGeometry(candidate.plan);
  }
}

INSTANTIATE_TEST_SUITE_P(Ops, SearchedPlacements, ::testing::Range(0, 4));

}  // namespace
}  // namespace t10
