// Persistent plan cache: signature keying, fingerprint versioning, warm-hit
// byte-identity, corruption rejection and stale-file eviction.

#include "src/core/pass/plan_cache.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/core/compiler.h"
#include "src/ir/builder.h"
#include "src/obs/metrics.h"

namespace t10 {
namespace {

namespace fs = std::filesystem;

ChipSpec SmallChip(int cores = 64) {
  ChipSpec chip = ChipSpec::IpuMk2();
  chip.num_cores = cores;
  chip.cores_per_chip = cores;
  return chip;
}

Graph Mlp(std::int64_t batch = 32) {
  Graph g("mlp");
  g.Add(MatMulOp("fc1", batch, 256, 512, DataType::kF16, "x", "w1", "h1"));
  g.Add(ElementwiseOp("gelu", {batch, 512}, DataType::kF16, "h1", "h2", 8.0));
  g.Add(MatMulOp("fc2", batch, 512, 256, DataType::kF16, "h2", "w2", "y"));
  g.MarkWeight("w1");
  g.MarkWeight("w2");
  return g;
}

// A fresh empty directory under the system temp dir, unique per test.
fs::path FreshCacheDir(const std::string& tag) {
  const fs::path dir =
      fs::temp_directory_path() / ("t10_plan_cache_test_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<fs::path> CacheFilesIn(const fs::path& dir) {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".t10cache") files.push_back(entry.path());
  }
  return files;
}

std::int64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name).value();
}

TEST(OperatorSignatureTest, NameDoesNotParticipate) {
  Graph g("sig");
  g.Add(MatMulOp("alpha", 16, 128, 128, DataType::kF16, "x", "w1", "h1"));
  g.Add(MatMulOp("beta", 16, 128, 128, DataType::kF16, "h1", "w2", "h2"));
  EXPECT_EQ(OperatorSignature(g.op(0)), OperatorSignature(g.op(1)));
}

TEST(OperatorSignatureTest, ShapeDtypeAndKindAllParticipate) {
  Graph g("sig");
  g.Add(MatMulOp("a", 16, 128, 128, DataType::kF16, "x", "w1", "h1"));
  g.Add(MatMulOp("b", 16, 128, 256, DataType::kF16, "h1", "w2", "h2"));  // Shape.
  g.Add(MatMulOp("c", 16, 128, 128, DataType::kF32, "x2", "w3", "h3"));  // Dtype.
  g.Add(ElementwiseOp("d", {16, 128}, DataType::kF16, "e_in", "e_out", 8.0));  // Kind.
  const std::string base = OperatorSignature(g.op(0));
  EXPECT_NE(base, OperatorSignature(g.op(1)));
  EXPECT_NE(base, OperatorSignature(g.op(2)));
  EXPECT_NE(base, OperatorSignature(g.op(3)));
}

TEST(PlanCacheTest, WarmCompileSkipsSearchAndIsByteIdentical) {
  const fs::path dir = FreshCacheDir("warm");
  CompileOptions options;
  options.plan_cache_dir = dir.string();
  const Graph graph = Mlp();

  obs::MetricsRegistry::Global().Reset();
  std::string cold_fp;
  {
    Compiler cold(SmallChip(), options);
    CompiledModel model = cold.Compile(graph);
    ASSERT_TRUE(model.fits);
    cold_fp = model.Fingerprint();
  }  // Destructor flushes to disk.
  EXPECT_EQ(CounterValue("compiler.cache.misses"), 3);
  ASSERT_EQ(CacheFilesIn(dir).size(), 1u);

  obs::MetricsRegistry::Global().Reset();
  Compiler warm(SmallChip(), options);
  CompiledModel model = warm.Compile(graph);
  ASSERT_TRUE(model.fits);
  // Every signature loads from disk: zero misses, zero fresh searches, and
  // the rebuilt model is byte-identical to the cold one.
  EXPECT_EQ(CounterValue("compiler.cache.misses"), 0);
  EXPECT_EQ(CounterValue("compiler.search.searches"), 0);
  EXPECT_EQ(CounterValue("compiler.cache.hits"), 3);
  EXPECT_EQ(model.Fingerprint(), cold_fp);
  obs::MetricsRegistry::Global().Reset();
}

TEST(PlanCacheTest, DifferentChipSpecMissesTheCache) {
  const fs::path dir = FreshCacheDir("chip");
  CompileOptions options;
  options.plan_cache_dir = dir.string();
  const Graph graph = Mlp();
  { Compiler c(SmallChip(64), options); ASSERT_TRUE(c.Compile(graph).fits); }
  ASSERT_EQ(CacheFilesIn(dir).size(), 1u);

  obs::MetricsRegistry::Global().Reset();
  Compiler other(SmallChip(32), options);
  ASSERT_TRUE(other.Compile(graph).fits);
  // A different chip gets a different fingerprint, hence a separate file and
  // fresh searches — never plans searched for other hardware.
  EXPECT_EQ(CounterValue("compiler.cache.misses"), 3);
  EXPECT_EQ(CacheFilesIn(dir).size(), 2u);
  obs::MetricsRegistry::Global().Reset();
}

TEST(PlanCacheTest, DifferentConstraintsMissTheCache) {
  const fs::path dir = FreshCacheDir("constraints");
  CompileOptions options;
  options.plan_cache_dir = dir.string();
  const Graph graph = Mlp();
  { Compiler c(SmallChip(), options); ASSERT_TRUE(c.Compile(graph).fits); }

  obs::MetricsRegistry::Global().Reset();
  CompileOptions loose = options;
  loose.constraints.parallelism_fraction = 0.5;
  Compiler c(SmallChip(), loose);
  ASSERT_TRUE(c.Compile(graph).fits);
  EXPECT_EQ(CounterValue("compiler.cache.misses"), 3);
  EXPECT_EQ(CacheFilesIn(dir).size(), 2u);
  obs::MetricsRegistry::Global().Reset();
}

TEST(PlanCacheTest, DifferentCostModelSamplesMissTheCache) {
  const fs::path dir = FreshCacheDir("samples");
  CompileOptions options;
  options.plan_cache_dir = dir.string();
  const Graph graph = Mlp();
  { Compiler c(SmallChip(), options); ASSERT_TRUE(c.Compile(graph).fits); }

  obs::MetricsRegistry::Global().Reset();
  CompileOptions refit = options;
  refit.cost_model_samples = 120;  // Different fit -> different coefficients.
  Compiler c(SmallChip(), refit);
  ASSERT_TRUE(c.Compile(graph).fits);
  EXPECT_EQ(CounterValue("compiler.cache.misses"), 3);
  EXPECT_EQ(CacheFilesIn(dir).size(), 2u);
  obs::MetricsRegistry::Global().Reset();
}

TEST(PlanCacheTest, CorruptedEntryIsRejectedAndRecompiled) {
  const fs::path dir = FreshCacheDir("corrupt");
  CompileOptions options;
  options.plan_cache_dir = dir.string();
  const Graph graph = Mlp();
  std::string cold_fp;
  {
    Compiler c(SmallChip(), options);
    CompiledModel model = c.Compile(graph);
    ASSERT_TRUE(model.fits);
    cold_fp = model.Fingerprint();
  }
  const std::vector<fs::path> files = CacheFilesIn(dir);
  ASSERT_EQ(files.size(), 1u);

  // Flip a digit inside the file body, leaving the header intact. Whichever
  // entry the flip lands in now fails its checksum and must be dropped.
  std::string content;
  {
    std::ifstream in(files[0]);
    content.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
  }
  const std::size_t plan_pos = content.find("\nplan ");
  ASSERT_NE(plan_pos, std::string::npos);
  const std::size_t digit = content.find_first_of("0123456789", plan_pos + 6);
  ASSERT_NE(digit, std::string::npos);
  content[digit] = content[digit] == '9' ? '8' : '9';
  { std::ofstream out(files[0], std::ios::trunc); out << content; }

  obs::MetricsRegistry::Global().Reset();
  Compiler warm(SmallChip(), options);
  CompiledModel model = warm.Compile(graph);
  ASSERT_TRUE(model.fits);
  // The damaged entry was rejected and re-searched; the result is still
  // byte-identical to the cold compile.
  EXPECT_GE(CounterValue("compiler.plan_cache.rejected"), 1);
  EXPECT_GE(CounterValue("compiler.cache.misses"), 1);
  EXPECT_EQ(model.Fingerprint(), cold_fp);
  obs::MetricsRegistry::Global().Reset();
}

TEST(PlanCacheTest, TruncatedFileIsRejectedWholesale) {
  const fs::path dir = FreshCacheDir("truncated");
  CompileOptions options;
  options.plan_cache_dir = dir.string();
  const Graph graph = Mlp();
  { Compiler c(SmallChip(), options); ASSERT_TRUE(c.Compile(graph).fits); }
  const std::vector<fs::path> files = CacheFilesIn(dir);
  ASSERT_EQ(files.size(), 1u);
  // Replace the file with garbage that fails the header check.
  { std::ofstream out(files[0], std::ios::trunc); out << "not a cache\n"; }

  obs::MetricsRegistry::Global().Reset();
  Compiler warm(SmallChip(), options);
  ASSERT_TRUE(warm.Compile(graph).fits);
  EXPECT_GE(CounterValue("compiler.plan_cache.rejected"), 1);
  EXPECT_EQ(CounterValue("compiler.cache.misses"), 3);
  obs::MetricsRegistry::Global().Reset();
}

TEST(PlanCacheTest, FlushReloadRoundTripsHexfloatValues) {
  const fs::path dir = FreshCacheDir("roundtrip");
  PlanCache writer;
  ASSERT_TRUE(writer.AttachDir(dir.string(), 0x1234abcdu).ok());
  CachedPlanSet entry;
  entry.fops = {{4, 16}, {8, 8}};
  entry.temporals = {{{1, 2}, {}}, {{2, 1}, {4}}};
  entry.complete_space_log10 = 3.14159265358979311599796346854;
  entry.filtered_count = 42;
  entry.fop_count = 7;
  writer.Insert("sig-a", entry);
  ASSERT_TRUE(writer.Flush().ok());

  PlanCache reader;
  ASSERT_TRUE(reader.AttachDir(dir.string(), 0x1234abcdu).ok());
  EXPECT_EQ(reader.rejected_on_load(), 0);
  ASSERT_EQ(reader.size(), 1);
  const CachedPlanSet* loaded = reader.Lookup("sig-a");
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->fops, entry.fops);
  EXPECT_EQ(loaded->temporals, entry.temporals);
  // Hexfloat serialization must be bit-exact, not just close.
  EXPECT_EQ(loaded->complete_space_log10, entry.complete_space_log10);
  EXPECT_EQ(loaded->filtered_count, 42);
  EXPECT_EQ(loaded->fop_count, 7);
  EXPECT_EQ(reader.Lookup("sig-b"), nullptr);
}

TEST(PlanCacheTest, EvictsOldestFilesBeyondMaxFiles) {
  const fs::path dir = FreshCacheDir("evict");
  // Create several caches with distinct fingerprints, oldest first.
  for (std::uint64_t fp = 1; fp <= 5; ++fp) {
    PlanCache cache;
    ASSERT_TRUE(cache.AttachDir(dir.string(), fp, /*max_files=*/16).ok());
    CachedPlanSet entry;
    entry.fops = {{1}};
    entry.temporals = {{{1}}};
    cache.Insert("sig", entry);
    ASSERT_TRUE(cache.Flush().ok());
    // Spread mtimes so eviction order is well-defined.
    const auto stamp = fs::last_write_time(cache.file_path());
    fs::last_write_time(cache.file_path(),
                        stamp - std::chrono::seconds(10 * (6 - fp)));
  }
  ASSERT_EQ(CacheFilesIn(dir).size(), 5u);

  // Attaching with max_files=2 drops the three oldest fingerprints and keeps
  // the two newest (its own fingerprint-99 file does not exist yet — nothing
  // was flushed).
  PlanCache cache;
  ASSERT_TRUE(cache.AttachDir(dir.string(), 99, /*max_files=*/2).ok());
  EXPECT_EQ(CacheFilesIn(dir).size(), 2u);
  EXPECT_FALSE(fs::exists(dir / "plans-0000000000000001.t10cache"));
  EXPECT_FALSE(fs::exists(dir / "plans-0000000000000002.t10cache"));
  EXPECT_FALSE(fs::exists(dir / "plans-0000000000000003.t10cache"));
  EXPECT_TRUE(fs::exists(dir / "plans-0000000000000004.t10cache"));
  EXPECT_TRUE(fs::exists(dir / "plans-0000000000000005.t10cache"));
}

TEST(PlanCacheTest, AttachMissingDirectoryFails) {
  PlanCache cache;
  const Status status =
      cache.AttachDir("/nonexistent/t10/plan/cache/dir", 0x1u);
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(cache.attached());
}

}  // namespace
}  // namespace t10
