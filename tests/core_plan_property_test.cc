// Randomized property tests over the plan space: generate hundreds of valid
// (F_op, f_t) configurations for random operator shapes and check structural
// invariants of geometry, metrics, lowering, and — for a subsample — full
// numerical correctness through the interpreter. This is the "fuzzing" layer
// above the hand-picked cases in core_plan_test / core_functional_test.

#include <gtest/gtest.h>

#include "src/core/device_program.h"
#include "src/core/functional.h"
#include "src/core/plan.h"
#include "src/ir/builder.h"
#include "src/util/math_util.h"
#include "src/util/rng.h"

namespace t10 {
namespace {

// Draws a random valid plan for `op`, or nullopt if the draw was invalid.
std::optional<ExecutionPlan> RandomPlan(const Operator& op, Rng& rng, std::int64_t max_cores) {
  std::vector<std::int64_t> fop;
  for (const Axis& axis : op.axes()) {
    const auto divisors = Divisors(axis.length);
    fop.push_back(divisors[rng.Index(divisors.size())]);
  }
  if (Product(fop) > max_cores) {
    return std::nullopt;
  }
  std::vector<std::vector<std::int64_t>> temporal;
  for (const TensorRef& input : op.inputs()) {
    std::vector<std::int64_t> ft(input.dims.size(), 1);
    // Randomly split one non-compound dim by a divisor of the sharing count.
    std::int64_t share = 1;
    for (std::size_t a = 0; a < op.axes().size(); ++a) {
      if (!Operator::TensorUsesAxis(input, static_cast<int>(a))) {
        share *= fop[a];
      }
    }
    if (share > 1 && rng.Uniform(0, 2) > 0) {
      const std::size_t d = rng.Index(input.dims.size());
      if (!input.dims[d].compound()) {
        std::int64_t sub = CeilDiv(op.axes()[input.dims[d].axis].length,
                                   fop[input.dims[d].axis]);
        if (input.dims[d].axis >= 0) {
          const auto divisors = Divisors(Gcd(share, sub));
          ft[d] = divisors[rng.Index(divisors.size())];
        }
      }
    }
    temporal.push_back(ft);
  }
  temporal.emplace_back(op.output().dims.size(), 1);
  return ExecutionPlan::Create(op, fop, temporal);
}

Operator RandomMatMul(Rng& rng, int id) {
  const std::int64_t m = rng.Uniform(1, 12);
  const std::int64_t k = rng.Uniform(1, 24);
  const std::int64_t n = rng.Uniform(1, 12);
  return MatMulOp("mm" + std::to_string(id), m, k, n, DataType::kF32, "A", "B", "C");
}

TEST(PlanPropertyTest, MetricsInvariantsHoldForRandomPlans) {
  Rng rng(2024);
  ChipSpec chip = ChipSpec::IpuMk2();
  chip.num_cores = 32;
  chip.cores_per_chip = 32;
  GroundTruthTiming timing(chip);
  int accepted = 0;
  for (int trial = 0; trial < 600; ++trial) {
    Operator op = RandomMatMul(rng, trial);
    auto plan = RandomPlan(op, rng, chip.num_cores);
    if (!plan.has_value()) {
      continue;
    }
    ++accepted;
    PlanMetrics metrics = plan->Evaluate(timing, chip);
    EXPECT_GT(metrics.compute_seconds, 0.0);
    EXPECT_GE(metrics.exchange_seconds, 0.0);
    EXPECT_GE(metrics.shift_bytes_per_core, 0);
    EXPECT_EQ(metrics.steps, plan->total_steps());
    EXPECT_GE(metrics.per_core_bytes, chip.shift_buffer_bytes);
    EXPECT_LE(metrics.padding_ratio, 1.0 + 1e-12);
    EXPECT_GT(metrics.padding_ratio, 0.0);
    // Steps decompose over the loops.
    std::int64_t steps = 1;
    for (const RotationLoop& loop : plan->loops()) {
      EXPECT_EQ(plan->axis_slices()[loop.axis] % loop.pace, 0);
      steps *= loop.steps;
    }
    EXPECT_EQ(steps, plan->total_steps());
    // Lowered traffic matches the metric accounting.
    DeviceProgram program = LowerPlan(*plan);
    std::int64_t rotation_bytes = 0;
    for (const ProgramStep& step : program.steps) {
      for (const ShiftSet& shift : step.shifts) {
        rotation_bytes += shift.slab_bytes;
      }
    }
    EXPECT_EQ(rotation_bytes + program.epilogue_rounds * program.epilogue_chunk_bytes,
              metrics.shift_bytes_per_core);
  }
  EXPECT_GT(accepted, 150) << "random generator rejected too many draws";
}

TEST(PlanPropertyTest, RandomPlansExecuteCorrectly) {
  Rng rng(777);
  int executed = 0;
  for (int trial = 0; trial < 120 && executed < 40; ++trial) {
    Operator op = RandomMatMul(rng, trial);
    auto plan = RandomPlan(op, rng, 16);
    if (!plan.has_value()) {
      continue;
    }
    ++executed;
    std::vector<HostTensor> inputs = {
        RandomHostTensor(TensorShape(op.axes(), op.inputs()[0]), 1000 + trial),
        RandomHostTensor(TensorShape(op.axes(), op.inputs()[1]), 2000 + trial)};
    FunctionalStats stats;
    HostTensor got = ExecutePlanFunctionally(*plan, inputs, &stats);
    HostTensor want = ReferenceExecute(op, inputs);
    ASSERT_EQ(got.shape, want.shape);
    for (std::size_t i = 0; i < got.data.size(); ++i) {
      ASSERT_NEAR(got.data[i], want.data[i], 1e-3)
          << plan->DebugString() << " element " << i;
    }
  }
  EXPECT_GE(executed, 40);
}

TEST(PlanPropertyTest, MemoryMonotoneInReplication) {
  // Fixing F_op, growing f_t (less replication) must not increase memory.
  Operator op = MatMulOp("mm", 8, 16, 8, DataType::kF32, "A", "B", "C");
  std::int64_t previous_bytes = INT64_MAX;
  ChipSpec chip = ChipSpec::IpuMk2();
  for (std::int64_t ft : {1, 2, 4, 8}) {
    auto plan = ExecutionPlan::Create(op, {1, 8, 1}, {{1, ft}, {1, 1}, {1, 1}});
    ASSERT_TRUE(plan.has_value()) << ft;
    EXPECT_LE(plan->PerCoreBytes(chip), previous_bytes);
    previous_bytes = plan->PerCoreBytes(chip);
    // Replicas x ring size always equals the sharing count.
    const RTensorPlan& a = plan->tensors()[0];
    EXPECT_EQ(a.replicas * a.ring_size, a.share_cores);
  }
}

TEST(PlanPropertyTest, StepsMonotoneInTemporalSplit) {
  // More temporal partitions along k -> no fewer steps.
  Operator op = MatMulOp("mm", 4, 24, 8, DataType::kF32, "A", "B", "C");
  std::int64_t previous_steps = 0;
  for (std::int64_t ft : {2, 4, 8}) {
    auto plan = ExecutionPlan::Create(op, {1, 8, 1}, {{1, ft}, {1, 1}, {1, 1}});
    ASSERT_TRUE(plan.has_value()) << ft;
    EXPECT_GE(plan->total_steps(), previous_steps);
    previous_steps = plan->total_steps();
  }
}

}  // namespace
}  // namespace t10
