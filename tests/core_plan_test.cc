#include "src/core/plan.h"

#include <gtest/gtest.h>

#include "src/ir/builder.h"

namespace t10 {
namespace {

ChipSpec TestChip() {
  ChipSpec chip = ChipSpec::IpuMk2();
  chip.num_cores = 16;
  chip.cores_per_chip = 16;
  return chip;
}

// Paper Figure 7: C[m,n] += A[m,k] * B[k,n] with M=2, K=6, N=3 partitioned
// into a 2x3 grid (F_op = 2 on m, 3 on n, 1 on k), A temporally split 3-way
// along k, B 2-way along k.
TEST(ExecutionPlanTest, PaperFigure7Geometry) {
  Operator op = MatMulOp("mm", 2, 6, 3, DataType::kF16, "A", "B", "C");
  // Axes order is {m, n, k}.
  auto plan = ExecutionPlan::Create(op, {2, 3, 1},
                                    {{1, 3},   // A[m,k]: f_t = [1,3].
                                     {2, 1},   // B[k,n]: f_t = [2,1].
                                     {1, 1}}); // C[m,n]: outputs never rotate.
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->cores_used(), 6);
  EXPECT_DOUBLE_EQ(plan->padding_ratio(), 1.0);

  const RTensorPlan& a = plan->tensors()[0];
  EXPECT_EQ(a.share_cores, 3);  // Shared along n.
  EXPECT_EQ(a.ring_size, 3);
  EXPECT_EQ(a.replicas, 1);
  EXPECT_EQ(a.sub_shape, (std::vector<std::int64_t>{1, 6}));
  EXPECT_EQ(a.window, (std::vector<std::int64_t>{1, 2}));

  const RTensorPlan& b = plan->tensors()[1];
  EXPECT_EQ(b.share_cores, 2);  // Shared along m.
  EXPECT_EQ(b.ring_size, 2);
  EXPECT_EQ(b.window, (std::vector<std::int64_t>{3, 1}));

  // Paper: rp on k = min(2, 3) = 2, so the sub-operator takes 6/2 = 3 steps.
  ASSERT_EQ(plan->loops().size(), 1u);
  EXPECT_EQ(plan->loops()[0].axis, op.FindAxis("k"));
  EXPECT_EQ(plan->loops()[0].pace, 2);
  EXPECT_EQ(plan->loops()[0].steps, 3);
  EXPECT_EQ(plan->total_steps(), 3);
  EXPECT_EQ(plan->reduce_group(), 1);

  // Per-step sub-task: m=1, n=1, k=2 -> 4 flops.
  SubTaskShape task = plan->StepSubTask();
  EXPECT_DOUBLE_EQ(task.flops, 2.0 * 1 * 1 * 2);
}

// Paper Figure 3(b): partition along m only; the weight is fully replicated,
// one step, no communication.
TEST(ExecutionPlanTest, ReplicatedWeightPlanHasNoRotation) {
  Operator op = MatMulOp("mm", 4, 8, 8, DataType::kF16, "A", "B", "C");
  auto plan = ExecutionPlan::Create(op, {2, 1, 1}, {{1, 1}, {1, 1}, {1, 1}});
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->cores_used(), 2);
  EXPECT_EQ(plan->total_steps(), 1);
  EXPECT_TRUE(plan->loops().empty());
  const RTensorPlan& b = plan->tensors()[1];
  EXPECT_EQ(b.share_cores, 2);
  EXPECT_EQ(b.replicas, 2);  // One full copy per core.
  EXPECT_EQ(b.window_bytes, 8 * 8 * 2);
}

// Paper Figure 3(c): additionally split the weight along n; two steps, half
// the weight memory per core.
TEST(ExecutionPlanTest, SplitWeightPlanTradesMemoryForSteps) {
  Operator op = MatMulOp("mm", 4, 8, 8, DataType::kF16, "A", "B", "C");
  auto plan = ExecutionPlan::Create(op, {2, 1, 1}, {{1, 1}, {1, 2}, {1, 1}});
  ASSERT_TRUE(plan.has_value());
  const RTensorPlan& b = plan->tensors()[1];
  EXPECT_EQ(b.ring_size, 2);
  EXPECT_EQ(b.replicas, 1);
  EXPECT_EQ(b.window_bytes, 8 * 4 * 2);  // Half of the 8x8 weight.
  EXPECT_EQ(plan->total_steps(), 2);     // n rotates: 8 / 4.
}

TEST(ExecutionPlanTest, SpatialReductionCreatesReduceGroup) {
  Operator op = MatMulOp("mm", 4, 32, 4, DataType::kF16, "A", "B", "C");
  auto plan = ExecutionPlan::Create(op, {1, 1, 4}, {{1, 1}, {1, 1}, {1, 1}});
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->reduce_group(), 4);
  // Output shared by the 4 k-slices.
  EXPECT_EQ(plan->output_plan().share_cores, 4);
}

TEST(ExecutionPlanTest, PaddingRatioReflectsCeilDiv) {
  Operator op = MatMulOp("mm", 10, 8, 8, DataType::kF16, "A", "B", "C");
  // m=10 split 3 ways -> slices of 4, padded 12: ratio 10/12.
  auto plan = ExecutionPlan::Create(op, {3, 1, 1}, {{1, 1}, {1, 1}, {1, 1}});
  ASSERT_TRUE(plan.has_value());
  EXPECT_NEAR(plan->padding_ratio(), 10.0 / 12.0, 1e-12);
  EXPECT_EQ(plan->axis_slices()[0], 4);
}

TEST(ExecutionPlanTest, InvalidConfigsReturnNullopt) {
  Operator op = MatMulOp("mm", 4, 6, 4, DataType::kF16, "A", "B", "C");
  // f_t = 4 does not divide P_A = 2 (n split 2-way).
  EXPECT_FALSE(ExecutionPlan::Create(op, {1, 2, 1}, {{1, 4}, {1, 1}, {1, 1}}).has_value());
  // f_t = 4 does not tile k = 6.
  EXPECT_FALSE(ExecutionPlan::Create(op, {1, 4, 1}, {{1, 4}, {1, 1}, {1, 1}}).has_value());
  // Output temporal split is rejected.
  EXPECT_FALSE(ExecutionPlan::Create(op, {2, 2, 1}, {{1, 1}, {1, 1}, {2, 1}}).has_value());
  // F_op beyond axis length is rejected.
  EXPECT_FALSE(ExecutionPlan::Create(op, {5, 1, 1}, {{1, 1}, {1, 1}, {1, 1}}).has_value());
  // Zero factor is rejected.
  EXPECT_FALSE(ExecutionPlan::Create(op, {0, 1, 1}, {{1, 1}, {1, 1}, {1, 1}}).has_value());
}

TEST(ExecutionPlanTest, ConvCompoundDimsGetHalo) {
  Operator op = Conv2dOp("conv", 1, 4, 8, 8, 8, 3, 3, DataType::kF16, "I", "W", "O");
  std::vector<std::int64_t> fop(op.axes().size(), 1);
  fop[static_cast<std::size_t>(op.FindAxis("h"))] = 2;
  std::vector<std::vector<std::int64_t>> ft = {{1, 1, 1, 1}, {1, 1, 1, 1}, {1, 1, 1, 1}};
  auto plan = ExecutionPlan::Create(op, fop, ft);
  ASSERT_TRUE(plan.has_value());
  const RTensorPlan& input = plan->tensors()[0];
  // Input h+kh dim: slice h=4 plus kernel halo 2 -> 6; w stays 8+3-1=10.
  EXPECT_EQ(input.sub_shape, (std::vector<std::int64_t>{1, 4, 6, 10}));
  // Temporal split of a compound dim is rejected.
  std::vector<std::vector<std::int64_t>> bad = {{1, 1, 2, 1}, {1, 1, 1, 1}, {1, 1, 1, 1}};
  // Make the split plausible by sharing the input (partition f).
  fop[static_cast<std::size_t>(op.FindAxis("f"))] = 2;
  EXPECT_FALSE(ExecutionPlan::Create(op, fop, bad).has_value());
}

TEST(ExecutionPlanTest, EvaluateAccountsComputeAndExchange) {
  ChipSpec chip = TestChip();
  GroundTruthTiming timing(chip);
  Operator op = MatMulOp("mm", 2, 6, 3, DataType::kF16, "A", "B", "C");
  auto plan = ExecutionPlan::Create(op, {2, 3, 1}, {{1, 3}, {2, 1}, {1, 1}});
  ASSERT_TRUE(plan.has_value());
  PlanMetrics metrics = plan->Evaluate(timing, chip);
  EXPECT_EQ(metrics.steps, 3);
  EXPECT_GT(metrics.compute_seconds, 0.0);
  EXPECT_GT(metrics.exchange_seconds, 0.0);
  EXPECT_DOUBLE_EQ(metrics.epilogue_seconds, 0.0);
  // Per step, A ships a [1,2] f16 slab (4B) and B a [2,1] slab (4B); three
  // steps each.
  EXPECT_EQ(metrics.shift_bytes_per_core, 3 * 4 + 3 * 4);
  EXPECT_EQ(metrics.per_core_bytes,
            chip.shift_buffer_bytes + (1 * 2 + 3 * 1 + 1 * 1) * 2);
}

TEST(ExecutionPlanTest, EvaluateAddsEpilogueForReduceGroup) {
  ChipSpec chip = TestChip();
  GroundTruthTiming timing(chip);
  Operator op = MatMulOp("mm", 4, 32, 4, DataType::kF16, "A", "B", "C");
  auto plan = ExecutionPlan::Create(op, {1, 1, 4}, {{1, 1}, {1, 1}, {1, 1}});
  ASSERT_TRUE(plan.has_value());
  PlanMetrics metrics = plan->Evaluate(timing, chip);
  EXPECT_GT(metrics.epilogue_seconds, 0.0);
  EXPECT_GT(metrics.shift_bytes_per_core, 0);
}

// Memory/time trade-off property (the crux of Fig 17): replicating a shared
// tensor must never be slower, and splitting it must never use more memory.
TEST(ExecutionPlanTest, TemporalSplitIsMemoryCheaperAndSlower) {
  ChipSpec chip = TestChip();
  GroundTruthTiming timing(chip);
  Operator op = MatMulOp("mm", 8, 64, 64, DataType::kF16, "A", "B", "C");
  auto replicated = ExecutionPlan::Create(op, {8, 1, 1}, {{1, 1}, {1, 1}, {1, 1}});
  auto split = ExecutionPlan::Create(op, {8, 1, 1}, {{1, 1}, {1, 8}, {1, 1}});
  ASSERT_TRUE(replicated.has_value());
  ASSERT_TRUE(split.has_value());
  PlanMetrics fat = replicated->Evaluate(timing, chip);
  PlanMetrics thin = split->Evaluate(timing, chip);
  EXPECT_LT(thin.per_core_bytes, fat.per_core_bytes);
  EXPECT_GT(thin.exchange_seconds, fat.exchange_seconds);
  EXPECT_GE(thin.total_seconds(), fat.total_seconds());
}

TEST(ExecutionPlanTest, LoopOrderPutsSmallerTensorInner) {
  // A (large) rotates on k, B (small) rotates on n: B's axis should be inner.
  Operator op = MatMulOp("mm", 4, 64, 16, DataType::kF16, "A", "B", "C");
  // F_op: m=4, n=1, k=1. P_A = 1 (A uses m,k; missing n has factor 1)...
  // Use m split so B is shared, and n split so A is shared.
  auto plan = ExecutionPlan::Create(op, {2, 2, 1},
                                    {{1, 2},   // A rotates along k (ring from n).
                                     {1, 2},   // B rotates along n (ring from m).
                                     {1, 1}});
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->loops().size(), 2u);
  // A's sub-tensor is 2x64 f16 = 256B; B's is 64x8 f16 = 1024B. The larger
  // tensor (B, rotating on n) goes outer; the smaller (A, on k) goes inner.
  EXPECT_EQ(plan->loops().back().axis, op.FindAxis("k"));
}

}  // namespace
}  // namespace t10
