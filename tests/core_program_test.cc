// Lowering (§4.4) and byte-level execution tests: plans are lowered to
// device programs (allocations, rings, ComputeSets, ShiftSets) and executed
// on the functional Machine with real scratchpad buffers and bounded-buffer
// slab delivery. Outputs must match both the single-core reference and the
// locality-checked interpreter, and the traffic observed on the machine must
// match the plan's analytic accounting.

#include "src/core/program_executor.h"

#include <gtest/gtest.h>

#include "src/core/search.h"
#include "src/ir/builder.h"

namespace t10 {
namespace {

ChipSpec TinyChip(int cores) {
  ChipSpec chip = ChipSpec::IpuMk2();
  chip.name = "tiny";
  chip.num_cores = cores;
  chip.cores_per_chip = cores;
  return chip;
}

std::vector<HostTensor> RandomInputs(const Operator& op, std::uint64_t seed) {
  std::vector<HostTensor> inputs;
  for (std::size_t i = 0; i < op.inputs().size(); ++i) {
    inputs.push_back(RandomHostTensor(TensorShape(op.axes(), op.inputs()[i]), seed + i));
  }
  return inputs;
}

void ExpectTensorsNear(const HostTensor& a, const HostTensor& b, double tolerance = 1e-3) {
  ASSERT_EQ(a.shape, b.shape);
  for (std::size_t i = 0; i < a.data.size(); ++i) {
    ASSERT_NEAR(a.data[i], b.data[i], tolerance) << "element " << i;
  }
}

void CheckProgram(const Operator& op, const std::vector<std::int64_t>& fop,
                  const std::vector<std::vector<std::int64_t>>& ft) {
  auto plan = ExecutionPlan::Create(op, fop, ft);
  ASSERT_TRUE(plan.has_value()) << op.DebugString();
  ChipSpec chip = TinyChip(static_cast<int>(plan->cores_used()));
  Machine machine(chip);
  ProgramExecutor executor(machine, *plan);
  std::vector<HostTensor> inputs = RandomInputs(op, 21);
  ProgramRunStats stats;
  HostTensor got = *executor.Run(inputs, &stats);
  HostTensor want = ReferenceExecute(op, inputs);
  ExpectTensorsNear(got, want);
  EXPECT_EQ(stats.steps, plan->total_steps());
  // Machine memory fully released.
  for (int c = 0; c < machine.num_cores(); ++c) {
    EXPECT_EQ(machine.memory(c).used_bytes(), 0) << "core " << c;
  }
}

TEST(LoweringTest, Figure7ProgramStructure) {
  Operator op = MatMulOp("mm", 2, 6, 3, DataType::kF32, "A", "B", "C");
  auto plan = ExecutionPlan::Create(op, {2, 3, 1}, {{1, 3}, {2, 1}, {1, 1}});
  ASSERT_TRUE(plan.has_value());
  DeviceProgram program = LowerPlan(*plan);
  EXPECT_EQ(program.cores_used, 6);
  ASSERT_EQ(program.steps.size(), 3u);
  // Each step shifts both A and B.
  for (const ProgramStep& step : program.steps) {
    EXPECT_EQ(step.compute.vertices, 6);
    ASSERT_EQ(step.shifts.size(), 2u);
  }
  // A: 2 rings of 3 cores (one per m-slice); B: 3 rings of 2 (one per n-slice).
  EXPECT_EQ(program.allocations[0].rings.size(), 2u);
  EXPECT_EQ(program.allocations[0].rings.front().size(), 3u);
  EXPECT_EQ(program.allocations[1].rings.size(), 3u);
  EXPECT_EQ(program.allocations[1].rings.front().size(), 2u);
  // C never rotates.
  EXPECT_TRUE(program.allocations[2].rings.empty());
  EXPECT_EQ(program.epilogue_rounds, 0);
  // Per-core traffic matches Evaluate()'s accounting.
  ChipSpec chip = TinyChip(6);
  GroundTruthTiming timing(chip);
  EXPECT_EQ(program.BytesSentPerCore(), plan->Evaluate(timing, chip).shift_bytes_per_core);
}

TEST(LoweringTest, ReduceGroupGetsEpilogue) {
  Operator op = MatMulOp("mm", 4, 32, 4, DataType::kF32, "A", "B", "C");
  auto plan = ExecutionPlan::Create(op, {1, 1, 4}, {{1, 1}, {1, 1}, {1, 1}});
  ASSERT_TRUE(plan.has_value());
  DeviceProgram program = LowerPlan(*plan);
  EXPECT_EQ(program.epilogue_rounds, 3);
  EXPECT_GT(program.epilogue_chunk_bytes, 0);
}

TEST(LoweringTest, RingsPartitionTheSharingGroup) {
  // P = 8 sharing cores, ring size 4 -> 2 replicas (rings) per sub-tensor.
  Operator op = MatMulOp("mm", 8, 16, 8, DataType::kF32, "A", "B", "C");
  auto plan = ExecutionPlan::Create(op, {1, 8, 1}, {{1, 4}, {1, 1}, {1, 1}});
  ASSERT_TRUE(plan.has_value());
  DeviceProgram program = LowerPlan(*plan);
  const TensorAllocation& a = program.allocations[0];
  EXPECT_EQ(a.rings.size(), 2u);  // 1 sub-tensor x 2 replicas.
  std::set<int> seen;
  for (const auto& ring : a.rings) {
    EXPECT_EQ(ring.size(), 4u);
    for (int core : ring) {
      EXPECT_TRUE(seen.insert(core).second) << "core in two rings";
    }
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(ProgramExecutorTest, Figure7MatMul) {
  Operator op = MatMulOp("mm", 2, 6, 3, DataType::kF32, "A", "B", "C");
  CheckProgram(op, {2, 3, 1}, {{1, 3}, {2, 1}, {1, 1}});
}

TEST(ProgramExecutorTest, MismatchedWindows) {
  Operator op = MatMulOp("mm", 4, 12, 6, DataType::kF32, "A", "B", "C");
  CheckProgram(op, {2, 3, 1}, {{1, 3}, {2, 1}, {1, 1}});
}

TEST(ProgramExecutorTest, ReplicatedNoRotation) {
  Operator op = MatMulOp("mm", 8, 8, 8, DataType::kF32, "A", "B", "C");
  CheckProgram(op, {4, 1, 1}, {{1, 1}, {1, 1}, {1, 1}});
}

TEST(ProgramExecutorTest, SpatialReduction) {
  Operator op = MatMulOp("mm", 4, 16, 4, DataType::kF32, "A", "B", "C");
  CheckProgram(op, {2, 2, 4}, {{1, 1}, {1, 1}, {1, 1}});
}

TEST(ProgramExecutorTest, RotationPlusReduction) {
  Operator op = MatMulOp("mm", 2, 8, 4, DataType::kF32, "A", "B", "C");
  CheckProgram(op, {2, 2, 2}, {{1, 2}, {1, 1}, {1, 1}});
}

TEST(ProgramExecutorTest, TwoRotatingTensors) {
  Operator op = MatMulOp("mm", 4, 8, 8, DataType::kF32, "A", "B", "C");
  CheckProgram(op, {4, 2, 1}, {{1, 2}, {1, 2}, {1, 1}});
}

TEST(ProgramExecutorTest, PaddedAxes) {
  Operator op = MatMulOp("mm", 5, 6, 3, DataType::kF32, "A", "B", "C");
  CheckProgram(op, {2, 3, 1}, {{1, 3}, {1, 1}, {1, 1}});
}

TEST(ProgramExecutorTest, ConvWithWeightRotation) {
  Operator op = Conv2dOp("conv", 1, 2, 4, 8, 4, 3, 3, DataType::kF32, "I", "W", "O");
  std::vector<std::int64_t> fop = {1, 1, 4, 1, 1, 1, 1};
  CheckProgram(op, fop, {{1, 1, 1, 1}, {4, 1, 1, 1}, {1, 1, 1, 1}});
}

TEST(ProgramExecutorTest, StridedConv) {
  Operator op =
      Conv2dOp("conv_s2", 1, 2, 4, 4, 4, 3, 3, DataType::kF32, "I", "W", "O", /*stride=*/2);
  std::vector<std::int64_t> fop = {1, 2, 2, 1, 1, 1, 1};
  CheckProgram(op, fop, {{1, 1, 1, 1}, {1, 1, 1, 1}, {1, 1, 1, 1}});
}

TEST(ProgramExecutorTest, ElementwiseAndReduce) {
  Operator unary = ElementwiseOp("relu", {4, 6}, DataType::kF32, "x", "y");
  CheckProgram(unary, {2, 3}, {{1, 1}, {1, 1}});
  Operator reduce = ReduceOp("sum", {4, 8}, DataType::kF32, "x", "y");
  CheckProgram(reduce, {2, 4}, {{1, 1}, {1}});
}

TEST(ProgramExecutorTest, TinyShiftBufferStillCorrect) {
  // Slab (12 floats = 48B) far above the 16B staging buffer: many rounds.
  Operator op = MatMulOp("mm", 4, 12, 4, DataType::kF32, "A", "B", "C");
  auto plan = ExecutionPlan::Create(op, {1, 4, 1}, {{1, 2}, {1, 1}, {1, 1}});
  ASSERT_TRUE(plan.has_value());
  ChipSpec chip = TinyChip(4);
  chip.shift_buffer_bytes = 16;
  Machine machine(chip);
  ProgramExecutor executor(machine, *plan);
  std::vector<HostTensor> inputs = RandomInputs(op, 5);
  ProgramRunStats stats;
  HostTensor got = *executor.Run(inputs, &stats);
  ExpectTensorsNear(got, ReferenceExecute(op, inputs));
  EXPECT_GT(stats.shift_rounds, stats.steps);  // Chunking happened.
}

TEST(ProgramExecutorTest, TrafficMatchesMachineCounters) {
  Operator op = MatMulOp("mm", 2, 6, 3, DataType::kF32, "A", "B", "C");
  auto plan = ExecutionPlan::Create(op, {2, 3, 1}, {{1, 3}, {2, 1}, {1, 1}});
  ASSERT_TRUE(plan.has_value());
  Machine machine(TinyChip(6));
  ProgramExecutor executor(machine, *plan);
  std::vector<HostTensor> inputs = RandomInputs(op, 9);
  ProgramRunStats stats;
  ASSERT_TRUE(executor.Run(inputs, &stats).ok());
  // Every core sends program.BytesSentPerCore() minus the host-merged
  // epilogue; with 6 cores:
  EXPECT_EQ(stats.bytes_sent_total,
            6 * executor.program().BytesSentPerCore());
}

// Every search-produced plan with <= 1 rotating dim per tensor must execute
// byte-identically to the reference through the full lowering pipeline.
class SearchedProgramsExecute : public ::testing::TestWithParam<int> {};

TEST_P(SearchedProgramsExecute, MatchesReference) {
  ChipSpec chip = TinyChip(12);
  GroundTruthTiming timing(chip);
  Operator op = [&]() -> Operator {
    switch (GetParam()) {
      case 0:
        return MatMulOp("mm", 6, 12, 4, DataType::kF32, "A", "B", "C");
      case 1:
        return MatMulOp("skinny", 1, 24, 12, DataType::kF32, "A", "B", "C");
      default:
        return BatchedMatMulOp("bmm", 2, 4, 6, 4, DataType::kF32, "A", "B", "C");
    }
  }();
  SearchConstraints constraints;
  constraints.parallelism_fraction = 0.5;
  constraints.max_rotating_dims = 1;
  IntraOpResult result = SearchOperatorPlans(op, chip, timing, constraints);
  ASSERT_FALSE(result.pareto.empty());
  std::vector<HostTensor> inputs = RandomInputs(op, 31 + GetParam());
  HostTensor want = ReferenceExecute(op, inputs);
  Machine machine(chip);
  for (const PlanCandidate& candidate : result.pareto) {
    ProgramExecutor executor(machine, candidate.plan);
    HostTensor got = *executor.Run(inputs);
    ExpectTensorsNear(got, want);
  }
}

INSTANTIATE_TEST_SUITE_P(Ops, SearchedProgramsExecute, ::testing::Range(0, 3));

}  // namespace
}  // namespace t10
