#include "src/core/search.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/cost_model.h"
#include "src/ir/builder.h"

namespace t10 {
namespace {

class SearchTest : public ::testing::Test {
 protected:
  SearchTest()
      : chip_([] {
          ChipSpec chip = ChipSpec::IpuMk2();
          chip.num_cores = 64;
          chip.cores_per_chip = 64;
          return chip;
        }()),
        timing_(chip_) {}

  ChipSpec chip_;
  GroundTruthTiming timing_;
};

TEST_F(SearchTest, ParetoFrontierIsMinimal) {
  Operator op = MatMulOp("mm", 64, 256, 64, DataType::kF16, "A", "B", "C");
  IntraOpResult result = SearchOperatorPlans(op, chip_, timing_);
  ASSERT_GE(result.pareto.size(), 2u) << "expected a memory/time trade-off";
  for (std::size_t i = 1; i < result.pareto.size(); ++i) {
    // Sorted by memory ascending, and strictly improving in time.
    EXPECT_GT(result.pareto[i].predicted.per_core_bytes,
              result.pareto[i - 1].predicted.per_core_bytes);
    EXPECT_LT(result.pareto[i].predicted.total_seconds(),
              result.pareto[i - 1].predicted.total_seconds());
  }
}

TEST_F(SearchTest, AllPlansRespectChipLimits) {
  Operator op = MatMulOp("mm", 32, 128, 96, DataType::kF16, "A", "B", "C");
  IntraOpResult result = SearchOperatorPlans(op, chip_, timing_);
  for (const PlanCandidate& c : result.pareto) {
    EXPECT_LE(c.predicted.per_core_bytes, chip_.core_memory_bytes);
    EXPECT_LE(c.plan.cores_used(), chip_.num_cores);
    EXPECT_GE(c.plan.padding_ratio(), 0.9 - 1e-9);
  }
}

TEST_F(SearchTest, ParallelismConstraintHolds) {
  Operator op = MatMulOp("mm", 64, 64, 64, DataType::kF16, "A", "B", "C");
  SearchConstraints constraints;
  constraints.parallelism_fraction = 0.9;
  IntraOpResult result = SearchOperatorPlans(op, chip_, timing_, constraints);
  for (const PlanCandidate& c : result.pareto) {
    EXPECT_GE(c.plan.cores_used(), static_cast<std::int64_t>(0.9 * 64));
  }
}

TEST_F(SearchTest, LooserConstraintsEnlargeFilteredSpace) {
  Operator op = MatMulOp("mm", 48, 96, 80, DataType::kF16, "A", "B", "C");
  SearchConstraints strict;
  strict.parallelism_fraction = 0.95;
  strict.padding_threshold = 0.95;
  SearchConstraints loose;
  loose.parallelism_fraction = 0.5;
  loose.padding_threshold = 0.8;
  IntraOpResult strict_result = SearchOperatorPlans(op, chip_, timing_, strict);
  IntraOpResult loose_result = SearchOperatorPlans(op, chip_, timing_, loose);
  EXPECT_GT(loose_result.filtered_count, strict_result.filtered_count);
}

TEST_F(SearchTest, CompleteSpaceVastlyExceedsFiltered) {
  Operator op = Conv2dOp("conv", 8, 64, 64, 28, 28, 3, 3, DataType::kF16, "I", "W", "O");
  SearchConstraints constraints;
  IntraOpResult result = SearchOperatorPlans(op, chip_, timing_, constraints);
  // Fig 18: complete space is astronomically larger than the filtered space.
  EXPECT_GT(result.complete_space_log10, 10.0);
  EXPECT_GT(result.filtered_count, 0);
  EXPECT_LT(std::log10(static_cast<double>(result.filtered_count)),
            result.complete_space_log10 - 3.0);
  // Final Pareto sets are small (paper: < 50 for most operators).
  EXPECT_LE(result.pareto.size(), 200u);
}

TEST_F(SearchTest, TinyOperatorRelaxesConstraints) {
  // A 4-element op cannot use 90% of 64 cores; the search must relax rather
  // than fail.
  Operator op = ElementwiseOp("tiny", {2, 2}, DataType::kF16, "x", "y");
  IntraOpResult result = SearchOperatorPlans(op, chip_, timing_);
  ASSERT_FALSE(result.pareto.empty());
  EXPECT_LE(result.pareto.front().plan.cores_used(), 4);
}

TEST_F(SearchTest, VendorOpGetsSingleFixedPlan) {
  Operator op = VendorOp("sort", {1024}, DataType::kF16, "x", "y");
  IntraOpResult result = SearchOperatorPlans(op, chip_, timing_);
  ASSERT_EQ(result.pareto.size(), 1u);
  EXPECT_GT(result.pareto.front().plan.cores_used(), 1);
}

TEST_F(SearchTest, SkinnyMatMulUsesReductionPartitioning) {
  // LLM-decode style m=1: parallel axes alone (1 x 64) cannot fill 64 cores
  // beyond n; k-partitioning should appear somewhere in the frontier.
  Operator op = MatMulOp("decode", 1, 512, 64, DataType::kF16, "A", "B", "C");
  IntraOpResult result = SearchOperatorPlans(op, chip_, timing_);
  ASSERT_FALSE(result.pareto.empty());
  bool uses_reduction_split = false;
  for (const PlanCandidate& c : result.pareto) {
    if (c.plan.reduce_group() > 1) {
      uses_reduction_split = true;
    }
  }
  EXPECT_TRUE(uses_reduction_split);
}

TEST(ParetoFrontierTest, FiltersDominatedPlans) {
  Operator op = MatMulOp("mm", 4, 4, 4, DataType::kF16, "A", "B", "C");
  auto plan = ExecutionPlan::Create(op, {1, 1, 1}, {{1, 1}, {1, 1}, {1, 1}});
  ASSERT_TRUE(plan.has_value());
  auto make = [&](std::int64_t bytes, double seconds) {
    PlanCandidate c;
    c.plan = *plan;
    c.predicted.per_core_bytes = bytes;
    c.predicted.compute_seconds = seconds;
    return c;
  };
  auto frontier = ParetoFrontier({make(100, 5.0), make(200, 5.0), make(150, 4.0),
                                  make(300, 1.0), make(50, 10.0), make(400, 2.0)});
  ASSERT_EQ(frontier.size(), 4u);
  EXPECT_EQ(frontier[0].predicted.per_core_bytes, 50);
  EXPECT_EQ(frontier[1].predicted.per_core_bytes, 100);
  EXPECT_EQ(frontier[2].predicted.per_core_bytes, 150);
  EXPECT_EQ(frontier[3].predicted.per_core_bytes, 300);
}

}  // namespace
}  // namespace t10
