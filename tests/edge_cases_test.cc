// Edge cases across the stack: vendor/gather operators end-to-end, halo
// tolerance rules, single-core chips, degenerate shapes, debug strings.

#include <gtest/gtest.h>

#include "src/core/compiler.h"
#include "src/ir/builder.h"
#include "src/ir/graph.h"

namespace t10 {
namespace {

ChipSpec SmallChip(int cores = 64) {
  ChipSpec chip = ChipSpec::IpuMk2();
  chip.num_cores = cores;
  chip.cores_per_chip = cores;
  return chip;
}

TEST(EdgeCaseTest, VendorOpCompilesInGraph) {
  Compiler compiler(SmallChip());
  Graph g("with-vendor");
  g.Add(MatMulOp("fc", 32, 64, 64, DataType::kF16, "x", "w", "h"));
  g.Add(VendorOp("topk", {32, 64}, DataType::kF16, "h", "y"));
  g.MarkWeight("w");
  CompiledModel model = compiler.Compile(g);
  ASSERT_TRUE(model.fits);
  // Vendor op gets exactly one plan (no search).
  EXPECT_EQ(model.ops[1].pareto_count, 1);
  EXPECT_GT(model.ops[1].measured.compute_seconds, 0.0);
}

TEST(EdgeCaseTest, GatherCompilesOnChip) {
  Compiler compiler(SmallChip());
  Graph g("embedding");
  g.Add(GatherOp("emb", 256, 30000, 128, DataType::kF16, "ids", "table", "e"));
  g.MarkWeight("table");
  CompiledModel model = compiler.Compile(g);
  ASSERT_TRUE(model.fits);
  // The 30000x128 table cannot be replicated; the plan must shard it.
  const RTensorPlan& table = model.ops[0].active_plan.tensors()[1];
  EXPECT_LT(table.window_bytes, 30000 * 128 * 2);
}

TEST(EdgeCaseTest, SingleCoreChip) {
  ChipSpec chip = SmallChip(1);
  Compiler compiler(chip);
  Graph g("tiny");
  g.Add(MatMulOp("fc", 8, 16, 8, DataType::kF16, "x", "w", "y"));
  g.MarkWeight("w");
  CompiledModel model = compiler.Compile(g);
  ASSERT_TRUE(model.fits);
  EXPECT_EQ(model.ops[0].measured.cores_used, 1);
  EXPECT_DOUBLE_EQ(model.ops[0].measured.exchange_seconds, 0.0);
}

TEST(EdgeCaseTest, UnitAxesEverywhere) {
  auto op = MatMulOp("mv", 1, 1, 1, DataType::kF32, "A", "B", "C");
  auto plan = ExecutionPlan::Create(op, {1, 1, 1}, {{1, 1}, {1, 1}, {1, 1}});
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->total_steps(), 1);
  EXPECT_EQ(plan->cores_used(), 1);
}

TEST(EdgeCaseTest, HaloToleranceRequiresCompoundDim) {
  // A non-halo consumer cannot silently grow a tensor's shape.
  Graph g("strict");
  g.Add(ElementwiseOp("e1", {4, 4}, DataType::kF16, "x", "y"));
  EXPECT_DEATH(g.Add(ElementwiseOp("e2", {4, 8}, DataType::kF16, "y", "z")), "shape mismatch");
}

TEST(EdgeCaseTest, HaloGrowthThenInteriorRead) {
  Graph g("halo");
  // Producer emits [1,4,6,6]; conv consumes with a 3x3 halo -> [1,4,8,8];
  // a later elementwise reads the original interior.
  g.Add(Conv2dOp("c0", 1, 3, 4, 6, 6, 3, 3, DataType::kF16, "img", "k0", "f0"));
  g.Add(Conv2dOp("c1", 1, 4, 4, 6, 6, 3, 3, DataType::kF16, "f0", "k1", "f1"));
  g.Add(BinaryOp("skip", {1, 4, 6, 6}, DataType::kF16, "f0", "f1", "out"));
  g.MarkWeight("k0");
  g.MarkWeight("k1");
  EXPECT_TRUE(g.tensor("f0").halo_padded);
  EXPECT_EQ(g.tensor("f0").shape, (std::vector<std::int64_t>{1, 4, 8, 8}));
  // Liveness covers f0 through the skip connection.
  auto live = g.LiveSets();
  EXPECT_TRUE(live[2].count("f0"));
}

TEST(EdgeCaseTest, DebugStringsAreInformative) {
  Operator op = MatMulOp("mm", 2, 6, 3, DataType::kF16, "A", "B", "C");
  EXPECT_NE(op.DebugString().find("k=6(r)"), std::string::npos);
  auto plan = ExecutionPlan::Create(op, {2, 3, 1}, {{1, 3}, {2, 1}, {1, 1}});
  ASSERT_TRUE(plan.has_value());
  const std::string s = plan->DebugString();
  EXPECT_NE(s.find("F_op=[m:2,n:3,k:1]"), std::string::npos) << s;
  EXPECT_NE(s.find("steps=3"), std::string::npos) << s;
}

TEST(EdgeCaseTest, ReductionOnlyParallelismStillWorks) {
  // m = n = 1: the only way to use many cores is splitting k.
  ChipSpec chip = SmallChip(16);
  Compiler compiler(chip);
  Graph g("dot");
  g.Add(MatMulOp("dot", 1, 4096, 1, DataType::kF16, "a", "b", "c"));
  g.MarkWeight("b");
  CompiledModel model = compiler.Compile(g);
  ASSERT_TRUE(model.fits);
  EXPECT_GT(model.ops[0].active_plan.reduce_group(), 1);
  EXPECT_GT(model.ops[0].measured.cores_used, 8);
}

}  // namespace
}  // namespace t10
