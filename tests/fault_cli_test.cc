// Exit-code and output contract of `t10c --faults`: a recoverable transient
// campaign exits 0 and reports bit-identical ops, malformed specs are flag
// errors (exit 2), persistent faults trigger a degraded re-plan, and the
// campaign summary line is byte-identical run to run under a fixed seed.
// Exit 4 is reserved for operational campaign failures. The binary path is
// injected by CMake as T10_T10C_BIN.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

namespace t10 {
namespace {

int RunT10c(const std::string& args) {
  const std::string command = std::string(T10_T10C_BIN) + " " + args;
  const int status = std::system(command.c_str());
  return WEXITSTATUS(status);
}

std::string ReadFile(const std::string& path) {
  std::string contents;
  std::FILE* file = std::fopen(path.c_str(), "r");
  EXPECT_NE(file, nullptr) << path;
  if (file == nullptr) {
    return contents;
  }
  char buffer[4096];
  std::size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(file);
  return contents;
}

// Everything from "fault campaign" on: the campaign report is deterministic,
// while the compile report above it contains wall-clock timings.
std::string CampaignSection(const std::string& output) {
  const std::size_t start = output.find("fault campaign");
  return start == std::string::npos ? std::string() : output.substr(start);
}

TEST(FaultCliTest, TransientCampaignRecoversAndExitsZero) {
  const std::string out_path = ::testing::TempDir() + "/t10c_faults_out.txt";
  ASSERT_EQ(RunT10c("--demo --faults corrupt=0.01,seed=7 > " + out_path + " 2>/dev/null"), 0);
  const std::string output = ReadFile(out_path);
  EXPECT_NE(output.find("fault campaign"), std::string::npos) << output;
  EXPECT_NE(output.find("bit-identical"), std::string::npos) << output;
  EXPECT_EQ(output.find("MISMATCH"), std::string::npos) << output;
}

TEST(FaultCliTest, MalformedSpecIsFlagError) {
  EXPECT_EQ(RunT10c("--demo --faults bogus=1 > /dev/null 2>&1"), 2);
  EXPECT_EQ(RunT10c("--demo --faults corrupt=2.0 > /dev/null 2>&1"), 2);
  EXPECT_EQ(RunT10c("--demo --faults link_down=3 > /dev/null 2>&1"), 2);
}

TEST(FaultCliTest, MalformedFailedCoresIsFlagError) {
  EXPECT_EQ(RunT10c("--demo --failed-cores 1,x > /dev/null 2>&1"), 2);
}

TEST(FaultCliTest, CoreDownTriggersDegradedReplan) {
  const std::string out_path = ::testing::TempDir() + "/t10c_degraded_out.txt";
  ASSERT_EQ(RunT10c("--demo --faults corrupt=0.005,seed=11,core_down=3 > " + out_path +
                    " 2>/dev/null"),
            0);
  const std::string output = ReadFile(out_path);
  EXPECT_NE(output.find("degraded re-plan"), std::string::npos) << output;
  EXPECT_NE(output.find("bit-identical"), std::string::npos) << output;
}

TEST(FaultCliTest, FailedCoresFlagAloneRunsDegradedCampaign) {
  const std::string out_path = ::testing::TempDir() + "/t10c_failed_cores_out.txt";
  ASSERT_EQ(RunT10c("--demo --failed-cores 1,5,9 > " + out_path + " 2>/dev/null"), 0);
  const std::string output = ReadFile(out_path);
  EXPECT_NE(output.find("degraded re-plan"), std::string::npos) << output;
}

TEST(FaultCliTest, FixedSeedCampaignOutputIsDeterministic) {
  const std::string out_a = ::testing::TempDir() + "/t10c_det_a.txt";
  const std::string out_b = ::testing::TempDir() + "/t10c_det_b.txt";
  const std::string args = "--demo --faults corrupt=0.01,drop=0.002,stall=0.002 --fault-seed 42";
  ASSERT_EQ(RunT10c(args + " > " + out_a + " 2>/dev/null"), 0);
  ASSERT_EQ(RunT10c(args + " > " + out_b + " 2>/dev/null"), 0);
  const std::string a = CampaignSection(ReadFile(out_a));
  const std::string b = CampaignSection(ReadFile(out_b));
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace t10
