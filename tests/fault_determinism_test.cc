// Determinism contract of the fault layer: the same FaultSpec seed over the
// same workload must yield a byte-identical fault schedule, identical
// retry/checkpoint accounting, and identical output bytes — run to run.
// Both the executor level (one plan, burst faults) and the campaign level
// (whole model, rate-driven faults) are replayed twice and compared field by
// field.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/core/program_executor.h"
#include "src/fault/campaign.h"
#include "src/fault/fault_plan.h"
#include "src/ir/builder.h"

namespace t10 {
namespace {

ChipSpec TinyChip(int cores) {
  ChipSpec chip = ChipSpec::IpuMk2();
  chip.name = "tiny";
  chip.num_cores = cores;
  chip.cores_per_chip = cores;
  return chip;
}

Graph SmallModel() {
  Graph g("small-mlp");
  g.Add(MatMulOp("fc1", 8, 16, 8, DataType::kF32, "x", "w1", "h1"));
  g.Add(ElementwiseOp("relu", {8, 8}, DataType::kF32, "h1", "h2"));
  g.Add(MatMulOp("fc2", 8, 8, 8, DataType::kF32, "h2", "w2", "y"));
  g.MarkWeight("w1");
  g.MarkWeight("w2");
  return g;
}

struct ExecutorRun {
  Status status = Status::Ok();
  HostTensor output;
  ProgramRunStats stats;
  std::vector<std::string> schedule_log;
  std::int64_t injected = 0;
};

ExecutorRun RunOnce(const ExecutionPlan& plan, const std::vector<HostTensor>& inputs,
                    const fault::FaultSpec& spec) {
  fault::FaultInjector injector(spec);
  Machine machine(TinyChip(static_cast<int>(plan.cores_used())));
  machine.AttachFaults(&injector);
  FaultToleranceOptions ft;
  ft.enabled = true;
  ExecutorRun run;
  StatusOr<HostTensor> got = ProgramExecutor(machine, plan, ft).Run(inputs, &run.stats);
  run.status = got.ok() ? Status::Ok() : got.status();
  if (got.ok()) {
    run.output = *std::move(got);
  }
  run.schedule_log = injector.schedule_log();
  run.injected = injector.injected();
  return run;
}

TEST(FaultDeterminismTest, SameSeedSameExecution) {
  Operator op = MatMulOp("mm", 4, 8, 8, DataType::kF32, "A", "B", "C");
  auto plan = ExecutionPlan::Create(op, {4, 2, 1}, {{1, 2}, {1, 2}, {1, 1}});
  ASSERT_TRUE(plan.has_value());
  std::vector<HostTensor> inputs = {RandomHostTensor({4, 8}, 11),
                                    RandomHostTensor({8, 8}, 12)};
  fault::FaultSpec spec;
  spec.seed = 97;
  spec.corrupt_rate = 0.05;
  spec.bitflip_rate = 0.02;
  spec.burst_corrupt = 2;  // Guarantees at least two recoveries.

  ExecutorRun a = RunOnce(*plan, inputs, spec);
  ExecutorRun b = RunOnce(*plan, inputs, spec);
  ASSERT_TRUE(a.status.ok()) << a.status.ToString();
  ASSERT_EQ(a.status, b.status);
  EXPECT_EQ(a.schedule_log, b.schedule_log);
  EXPECT_GE(a.injected, 2);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.stats.retries, b.stats.retries);
  EXPECT_EQ(a.stats.checkpoints, b.stats.checkpoints);
  EXPECT_EQ(a.stats.rollbacks, b.stats.rollbacks);
  EXPECT_DOUBLE_EQ(a.stats.fault_penalty_seconds, b.stats.fault_penalty_seconds);
  ASSERT_EQ(a.output.shape, b.output.shape);
  EXPECT_EQ(std::memcmp(a.output.data.data(), b.output.data.data(),
                        a.output.data.size() * sizeof(float)),
            0);
}

TEST(FaultDeterminismTest, SameSeedSameCampaign) {
  const ChipSpec chip = TinyChip(16);
  const Graph graph = SmallModel();
  fault::FaultSpec spec;
  spec.seed = 2024;
  spec.corrupt_rate = 0.01;
  spec.burst_corrupt = 2;

  StatusOr<fault::CampaignResult> a = fault::RunFaultCampaign(chip, graph, spec);
  StatusOr<fault::CampaignResult> b = fault::RunFaultCampaign(chip, graph, spec);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_GT(a->executed, 0);
  EXPECT_TRUE(a->AllIdentical());
  EXPECT_GT(a->fault_events, 0);
  EXPECT_GE(a->faults_injected, 2);

  EXPECT_EQ(a->executed, b->executed);
  EXPECT_EQ(a->skipped, b->skipped);
  EXPECT_EQ(a->identical, b->identical);
  EXPECT_EQ(a->fault_events, b->fault_events);
  EXPECT_EQ(a->faults_injected, b->faults_injected);
  EXPECT_EQ(a->retries, b->retries);
  EXPECT_DOUBLE_EQ(a->fault_penalty_seconds, b->fault_penalty_seconds);
  EXPECT_EQ(a->schedule_log, b->schedule_log);
  ASSERT_EQ(a->ops.size(), b->ops.size());
  for (std::size_t i = 0; i < a->ops.size(); ++i) {
    EXPECT_EQ(a->ops[i].op_name, b->ops[i].op_name);
    EXPECT_EQ(a->ops[i].executed, b->ops[i].executed);
    EXPECT_EQ(a->ops[i].bit_identical, b->ops[i].bit_identical);
    EXPECT_EQ(a->ops[i].stats.retries, b->ops[i].stats.retries);
    EXPECT_EQ(a->ops[i].stats.rollbacks, b->ops[i].stats.rollbacks);
  }
}

TEST(FaultDeterminismTest, DifferentSeedDifferentSchedule) {
  const ChipSpec chip = TinyChip(16);
  const Graph graph = SmallModel();
  fault::FaultSpec spec;
  spec.seed = 1;
  spec.corrupt_rate = 0.05;
  fault::FaultSpec other = spec;
  other.seed = 2;

  StatusOr<fault::CampaignResult> a = fault::RunFaultCampaign(chip, graph, spec);
  StatusOr<fault::CampaignResult> b = fault::RunFaultCampaign(chip, graph, other);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  // Same workload, different seeds: both campaigns inject faults, but the
  // schedules they draw are different.
  EXPECT_FALSE(a->schedule_log.empty());
  EXPECT_FALSE(b->schedule_log.empty());
  EXPECT_NE(a->schedule_log, b->schedule_log);
}

}  // namespace
}  // namespace t10
