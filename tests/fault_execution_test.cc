// Fault-tolerant byte-level execution: a multi-step compute-shift program
// run under injected transient faults must end bit-identical to the
// fault-free run (checksum retry for isolated damage, checkpoint rollback
// for retry exhaustion), persistent faults must surface as kUnavailable,
// and a plan recompiled for the surviving topology must execute correctly
// through a core map that routes around the downed core. Burst faults
// (FaultSpec::burst_corrupt) make every schedule exact, so the retry and
// rollback counters are asserted, not just bounded.

#include "src/core/program_executor.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/core/compiler.h"
#include "src/fault/fault_plan.h"
#include "src/ir/builder.h"

namespace t10 {
namespace {

ChipSpec TinyChip(int cores) {
  ChipSpec chip = ChipSpec::IpuMk2();
  chip.name = "tiny";
  chip.num_cores = cores;
  chip.cores_per_chip = cores;
  return chip;
}

// Figure 7's 2x3-core matmul: 3 steps, both inputs rotate every step, so
// transient faults on the shift path hit real data.
const Operator& Figure7Op() {
  static const Operator* op =
      new Operator(MatMulOp("mm", 2, 6, 3, DataType::kF32, "A", "B", "C"));
  return *op;
}

ExecutionPlan Figure7Plan() {
  auto plan = ExecutionPlan::Create(Figure7Op(), {2, 3, 1}, {{1, 3}, {2, 1}, {1, 1}});
  EXPECT_TRUE(plan.has_value());
  return *plan;
}

std::vector<HostTensor> Inputs(std::uint64_t seed = 77) {
  const Operator& op = Figure7Op();
  std::vector<HostTensor> inputs;
  for (std::size_t i = 0; i < op.inputs().size(); ++i) {
    inputs.push_back(RandomHostTensor(TensorShape(op.axes(), op.inputs()[i]), seed + i));
  }
  return inputs;
}

// The fault-free bytes every protected run must reproduce exactly.
HostTensor CleanRun(const ExecutionPlan& plan, const std::vector<HostTensor>& inputs) {
  Machine machine(TinyChip(static_cast<int>(plan.cores_used())));
  return *ProgramExecutor(machine, plan).Run(inputs);
}

bool BitIdentical(const HostTensor& a, const HostTensor& b) {
  return a.shape == b.shape && a.data.size() == b.data.size() &&
         std::memcmp(a.data.data(), b.data.data(), a.data.size() * sizeof(float)) == 0;
}

TEST(FaultExecutionTest, TransientCorruptionRecoversBitIdentically) {
  ExecutionPlan plan = Figure7Plan();
  const std::vector<HostTensor> inputs = Inputs();
  const HostTensor want = CleanRun(plan, inputs);

  fault::FaultSpec spec;
  spec.burst_corrupt = 2;  // First delivery damaged twice, then clean.
  fault::FaultInjector injector(spec);
  Machine machine(TinyChip(static_cast<int>(plan.cores_used())));
  machine.AttachFaults(&injector);
  FaultToleranceOptions ft;
  ft.enabled = true;
  ProgramExecutor executor(machine, plan, ft);
  ProgramRunStats stats;
  StatusOr<HostTensor> got = executor.Run(inputs, &stats);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(BitIdentical(*got, want));
  EXPECT_EQ(stats.retries, 2);
  EXPECT_EQ(stats.rollbacks, 0);
  EXPECT_GE(stats.checkpoints, 1);
  // Backoff for the two failed attempts: 1us * (2^0 + 2^1).
  EXPECT_DOUBLE_EQ(stats.fault_penalty_seconds, 3e-6);
}

TEST(FaultExecutionTest, RetryExhaustionRollsBackAndRecovers) {
  ExecutionPlan plan = Figure7Plan();
  const std::vector<HostTensor> inputs = Inputs();
  const HostTensor want = CleanRun(plan, inputs);

  // Default retry budget is 5 attempts per delivery. Six burst-corrupted
  // events exhaust the first delivery (-> kDataLoss -> rollback), then the
  // re-execution eats event 5 and succeeds on event 6.
  fault::FaultSpec spec;
  spec.burst_corrupt = 6;
  fault::FaultInjector injector(spec);
  Machine machine(TinyChip(static_cast<int>(plan.cores_used())));
  machine.AttachFaults(&injector);
  FaultToleranceOptions ft;
  ft.enabled = true;
  ProgramExecutor executor(machine, plan, ft);
  ProgramRunStats stats;
  StatusOr<HostTensor> got = executor.Run(inputs, &stats);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(BitIdentical(*got, want));
  EXPECT_EQ(stats.rollbacks, 1);
  EXPECT_EQ(stats.retries, 5);  // 4 before exhaustion + 1 after restart.
  EXPECT_GE(stats.checkpoints, 2);  // Initial snapshot + re-save after rollback.
}

TEST(FaultExecutionTest, RollbackBudgetExhaustionIsDataLoss) {
  ExecutionPlan plan = Figure7Plan();
  fault::FaultSpec spec;
  spec.burst_corrupt = 1000000;  // Every event damaged: unrecoverable.
  fault::FaultInjector injector(spec);
  Machine machine(TinyChip(static_cast<int>(plan.cores_used())));
  machine.AttachFaults(&injector);
  FaultToleranceOptions ft;
  ft.enabled = true;
  ft.max_rollbacks = 2;
  ProgramRunStats stats;
  StatusOr<HostTensor> got = ProgramExecutor(machine, plan, ft).Run(Inputs(), &stats);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(got.status().message().find("rollback"), std::string::npos)
      << got.status().ToString();
  EXPECT_EQ(stats.rollbacks, 2);
  // All buffers released despite the error path.
  for (int c = 0; c < machine.num_cores(); ++c) {
    EXPECT_EQ(machine.memory(c).used_bytes(), 0) << "core " << c;
  }
}

TEST(FaultExecutionTest, UnprotectedExecutionIsSilentlyWrong) {
  ExecutionPlan plan = Figure7Plan();
  const std::vector<HostTensor> inputs = Inputs();
  const HostTensor want = CleanRun(plan, inputs);

  fault::FaultSpec spec;
  spec.burst_corrupt = 1;
  fault::FaultInjector injector(spec);
  Machine machine(TinyChip(static_cast<int>(plan.cores_used())));
  machine.AttachFaults(&injector);
  // Fault tolerance off: the corrupted slab flows into the computation.
  StatusOr<HostTensor> got = ProgramExecutor(machine, plan).Run(inputs);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(BitIdentical(*got, want));
  EXPECT_EQ(injector.injected(), 1);
}

TEST(FaultExecutionTest, PersistentCoreDownSurfacesUnavailable) {
  ExecutionPlan plan = Figure7Plan();
  fault::FaultSpec spec;
  spec.failed_cores = {1};  // Inside the plan's 6-core span.
  fault::FaultInjector injector(spec);
  Machine machine(TinyChip(static_cast<int>(plan.cores_used())));
  machine.AttachFaults(&injector);
  FaultToleranceOptions ft;
  ft.enabled = true;
  StatusOr<HostTensor> got = ProgramExecutor(machine, plan, ft).Run(Inputs());
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
}

TEST(FaultExecutionTest, CoreMapRoutesAroundDownedCore) {
  ExecutionPlan plan = Figure7Plan();
  const std::vector<HostTensor> inputs = Inputs();
  const HostTensor want = CleanRun(plan, inputs);

  // 8-core machine with core 1 down; the 6 logical cores map onto survivors.
  ChipSpec chip = TinyChip(8);
  chip.health.failed_cores = {1};
  fault::FaultSpec spec;
  spec.failed_cores = {1};
  spec.burst_corrupt = 1;  // Transient damage on the surviving fabric too.
  fault::FaultInjector injector(spec);
  Machine machine(chip);
  machine.AttachFaults(&injector);
  FaultToleranceOptions ft;
  ft.enabled = true;
  std::vector<int> core_map = chip.UsableCoreIds();
  core_map.resize(plan.cores_used());
  ProgramRunStats stats;
  StatusOr<HostTensor> got =
      ProgramExecutor(machine, plan, ft, core_map).Run(inputs, &stats);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(BitIdentical(*got, want));
  EXPECT_EQ(stats.retries, 1);
  EXPECT_EQ(machine.memory(1).used_bytes(), 0);  // Downed core never touched.
}

TEST(ReplanDegradedTest, CompilesForSurvivorsOnly) {
  ChipSpec chip = TinyChip(8);
  chip.health.failed_cores = {3};
  Graph graph("tiny-mlp");
  graph.Add(MatMulOp("fc", 4, 8, 4, DataType::kF32, "x", "w", "h"));
  graph.Add(ElementwiseOp("relu", {4, 4}, DataType::kF32, "h", "y"));
  graph.MarkWeight("w");
  StatusOr<DegradedPlan> degraded = ReplanDegraded(chip, graph);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded->model.fits);
  EXPECT_EQ(degraded->surviving.num_cores, 7);
  EXPECT_NE(degraded->surviving.name.find("degraded"), std::string::npos);
  ASSERT_EQ(degraded->core_map.size(), 7u);
  for (int core : degraded->core_map) {
    EXPECT_NE(core, 3);
  }
  for (const CompiledOp& op : degraded->model.ops) {
    EXPECT_LE(op.measured.cores_used, 7);
  }
}

TEST(ReplanDegradedTest, HealthyChipIsFailedPrecondition) {
  Graph graph("g");
  graph.Add(MatMulOp("fc", 4, 8, 4, DataType::kF32, "x", "w", "h"));
  StatusOr<DegradedPlan> degraded = ReplanDegraded(TinyChip(8), graph);
  ASSERT_FALSE(degraded.ok());
  EXPECT_EQ(degraded.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ReplanDegradedTest, NoSurvivorsIsUnavailable) {
  ChipSpec chip = TinyChip(2);
  chip.health.failed_cores = {0, 1};
  Graph graph("g");
  graph.Add(MatMulOp("fc", 4, 8, 4, DataType::kF32, "x", "w", "h"));
  StatusOr<DegradedPlan> degraded = ReplanDegraded(chip, graph);
  ASSERT_FALSE(degraded.ok());
  EXPECT_EQ(degraded.status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace t10
