// Fault-model unit tests: the --faults spec grammar (good and malformed
// inputs, table-driven), the persistent-health queries, the exact
// replayability of the injected schedule under a fixed seed, and the FNV-1a
// checksum the reliable-transfer layer depends on.

#include "src/fault/fault_plan.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

namespace t10 {
namespace fault {
namespace {

TEST(ParseFaultSpecTest, FullGrammar) {
  StatusOr<FaultSpec> spec = ParseFaultSpec(
      "corrupt=0.01,drop=0.005,stall=0.002,bitflip=0.001,stall_us=5,burst=3,"
      "seed=42,core_down=3;17,link_down=2-5;7-0");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_DOUBLE_EQ(spec->corrupt_rate, 0.01);
  EXPECT_DOUBLE_EQ(spec->drop_rate, 0.005);
  EXPECT_DOUBLE_EQ(spec->stall_rate, 0.002);
  EXPECT_DOUBLE_EQ(spec->bitflip_rate, 0.001);
  EXPECT_DOUBLE_EQ(spec->stall_penalty_seconds, 5e-6);
  EXPECT_EQ(spec->burst_corrupt, 3);
  EXPECT_EQ(spec->seed, 42u);
  EXPECT_EQ(spec->failed_cores, (std::vector<int>{3, 17}));
  ASSERT_EQ(spec->failed_links.size(), 2u);
  EXPECT_EQ(spec->failed_links[0], std::make_pair(2, 5));
  EXPECT_EQ(spec->failed_links[1], std::make_pair(7, 0));
  EXPECT_TRUE(spec->any_transient());
  EXPECT_TRUE(spec->any_persistent());
}

TEST(ParseFaultSpecTest, EmptySpecIsDefault) {
  StatusOr<FaultSpec> spec = ParseFaultSpec("");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(spec->any_transient());
  EXPECT_FALSE(spec->any_persistent());
  EXPECT_EQ(spec->seed, 0x7105eedu);
}

TEST(ParseFaultSpecTest, MalformedInputsAreInvalidArgument) {
  struct Case {
    const char* text;
    const char* message_fragment;
  };
  const std::vector<Case> cases = {
      {"bogus=1", "unknown key 'bogus'"},
      {"corrupt", "is not key=value"},
      {"corrupt=1.5", "probability in [0,1]"},
      {"corrupt=-0.1", "probability in [0,1]"},
      {"drop=zero", "probability in [0,1]"},
      {"stall_us=-3", "non-negative integer"},
      {"burst=many", "non-negative integer"},
      {"seed=0x12", "non-negative integer"},
      {"core_down=3;x", "non-negative integer"},
      {"link_down=25", "is not src-dst"},
      {"link_down=2-x", "non-negative integer"},
      {"corrupt=0.6,drop=0.6", "rates sum to"},
  };
  for (const Case& c : cases) {
    StatusOr<FaultSpec> spec = ParseFaultSpec(c.text);
    ASSERT_FALSE(spec.ok()) << c.text;
    EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument) << c.text;
    EXPECT_NE(spec.status().message().find(c.message_fragment), std::string::npos)
        << c.text << " -> " << spec.status().ToString();
  }
}

TEST(FaultInjectorTest, HealthQueries) {
  FaultSpec spec;
  spec.failed_cores = {2};
  spec.failed_links = {{0, 1}};
  FaultInjector injector(spec);
  EXPECT_FALSE(injector.core_up(2));
  EXPECT_TRUE(injector.core_up(0));
  // A downed link is directional; a downed core takes out every link it touches.
  EXPECT_FALSE(injector.link_up(0, 1));
  EXPECT_TRUE(injector.link_up(1, 0));
  EXPECT_FALSE(injector.link_up(2, 3));
  EXPECT_FALSE(injector.link_up(3, 2));
  EXPECT_TRUE(injector.link_up(3, 4));
}

TEST(FaultInjectorTest, FaultFreeSpecInjectsNothing) {
  FaultInjector injector(FaultSpec{});
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(injector.OnTransfer(0, 1, 64).kind, FaultKind::kNone);
  }
  EXPECT_EQ(injector.events(), 100);
  EXPECT_EQ(injector.injected(), 0);
  EXPECT_TRUE(injector.schedule_log().empty());
}

TEST(FaultInjectorTest, BurstCorruptsFirstEventsExactly) {
  FaultSpec spec;
  spec.burst_corrupt = 3;
  FaultInjector injector(spec);
  for (int i = 0; i < 3; ++i) {
    FaultDecision d = injector.OnTransfer(0, 1, 64);
    EXPECT_EQ(d.kind, FaultKind::kCorrupt) << i;
    EXPECT_EQ(d.byte_offset, 0) << i;
    EXPECT_EQ(d.xor_mask, 0x01) << i;
  }
  EXPECT_EQ(injector.OnTransfer(0, 1, 64).kind, FaultKind::kNone);
  EXPECT_EQ(injector.injected(), 3);
  ASSERT_EQ(injector.schedule_log().size(), 3u);
  EXPECT_NE(injector.schedule_log()[0].find("kind=corrupt(burst)"), std::string::npos);
}

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  FaultSpec spec;
  spec.seed = 1234;
  spec.corrupt_rate = 0.2;
  spec.drop_rate = 0.1;
  spec.stall_rate = 0.1;
  spec.bitflip_rate = 0.1;
  FaultInjector a(spec);
  FaultInjector b(spec);
  for (int i = 0; i < 500; ++i) {
    FaultDecision da = a.OnTransfer(i % 4, (i + 1) % 4, 128);
    FaultDecision db = b.OnTransfer(i % 4, (i + 1) % 4, 128);
    ASSERT_EQ(da.kind, db.kind) << "event " << i;
    ASSERT_EQ(da.byte_offset, db.byte_offset) << "event " << i;
    ASSERT_EQ(da.xor_mask, db.xor_mask) << "event " << i;
    ASSERT_EQ(da.penalty_seconds, db.penalty_seconds) << "event " << i;
  }
  EXPECT_GT(a.injected(), 0);
  EXPECT_EQ(a.injected(), b.injected());
  EXPECT_EQ(a.schedule_log(), b.schedule_log());
}

TEST(FaultInjectorTest, DifferentSeedDifferentSchedule) {
  FaultSpec spec;
  spec.corrupt_rate = 0.3;
  FaultSpec other = spec;
  other.seed = spec.seed + 1;
  FaultInjector a(spec);
  FaultInjector b(other);
  bool differs = false;
  for (int i = 0; i < 500 && !differs; ++i) {
    differs = a.OnTransfer(0, 1, 128).kind != b.OnTransfer(0, 1, 128).kind;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultInjectorTest, StallCarriesConfiguredPenalty) {
  FaultSpec spec;
  spec.stall_rate = 1.0;
  spec.stall_penalty_seconds = 7e-6;
  FaultInjector injector(spec);
  FaultDecision d = injector.OnTransfer(0, 1, 16);
  EXPECT_EQ(d.kind, FaultKind::kStall);
  EXPECT_DOUBLE_EQ(d.penalty_seconds, 7e-6);
  EXPECT_EQ(d.xor_mask, 0);
}

TEST(ChecksumTest, DetectsSingleByteAndSingleBitDamage) {
  std::vector<std::byte> data(256);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i * 7 + 3);
  }
  const std::uint64_t clean = Checksum(data.data(), static_cast<std::int64_t>(data.size()));
  EXPECT_EQ(clean, Checksum(data.data(), static_cast<std::int64_t>(data.size())));
  data[100] ^= std::byte{0x01};  // Single bit flip.
  EXPECT_NE(clean, Checksum(data.data(), static_cast<std::int64_t>(data.size())));
  data[100] ^= std::byte{0x01};
  EXPECT_EQ(clean, Checksum(data.data(), static_cast<std::int64_t>(data.size())));
  // Empty span has the FNV-1a offset basis.
  EXPECT_EQ(Checksum(data.data(), 0), 0xcbf29ce484222325ULL);
}

}  // namespace
}  // namespace fault
}  // namespace t10
