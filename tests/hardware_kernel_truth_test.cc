#include "src/hardware/kernel_truth.h"

#include <gtest/gtest.h>

namespace t10 {
namespace {

SubTaskShape MatMulShape(std::int64_t m, std::int64_t k, std::int64_t n) {
  SubTaskShape s;
  s.kind = OpKind::kContraction;
  s.flops = 2.0 * static_cast<double>(m * k * n);
  s.in_bytes = (m * k + k * n) * 2;
  s.out_bytes = m * n * 2;
  s.inner_length = n;
  s.kernel_volume = 1;
  return s;
}

TEST(KernelTruthTest, DeterministicAcrossCalls) {
  KernelGroundTruth truth(ChipSpec::IpuMk2());
  SubTaskShape s = MatMulShape(64, 64, 64);
  EXPECT_DOUBLE_EQ(truth.SubTaskSeconds(s), truth.SubTaskSeconds(s));
  EXPECT_DOUBLE_EQ(truth.ShiftSeconds(4096), truth.ShiftSeconds(4096));
}

TEST(KernelTruthTest, MonotonicInWork) {
  KernelGroundTruth truth(ChipSpec::IpuMk2());
  double small = truth.SubTaskSeconds(MatMulShape(16, 16, 16));
  double big = truth.SubTaskSeconds(MatMulShape(128, 128, 128));
  EXPECT_GT(big, small);
}

TEST(KernelTruthTest, ComputeTimeNearRoofline) {
  ChipSpec chip = ChipSpec::IpuMk2();
  KernelGroundTruth truth(chip);
  SubTaskShape s = MatMulShape(128, 128, 128);
  double t = truth.SubTaskSeconds(s);
  double roofline = s.flops / chip.core_flops;
  // Must be above the pure roofline but within a small constant factor.
  EXPECT_GT(t, roofline);
  EXPECT_LT(t, 4.0 * roofline);
}

TEST(KernelTruthTest, ConvCarriesBlackBoxPenalty) {
  KernelGroundTruth truth(ChipSpec::IpuMk2());
  SubTaskShape mm = MatMulShape(64, 9 * 16, 64);
  SubTaskShape conv = mm;
  conv.kernel_volume = 9 * 16;  // 3x3 kernel, 16 channels.
  // Identical arithmetic, but the conv path pays the vendor black-box term.
  EXPECT_GT(truth.SubTaskSeconds(conv), truth.SubTaskSeconds(mm));
}

TEST(KernelTruthTest, ElementwiseSlowerPerFlopThanMatMul) {
  KernelGroundTruth truth(ChipSpec::IpuMk2());
  SubTaskShape mm = MatMulShape(64, 64, 64);
  SubTaskShape ew;
  ew.kind = OpKind::kElementwise;
  ew.flops = mm.flops;
  ew.in_bytes = mm.in_bytes;
  ew.out_bytes = mm.out_bytes;
  ew.inner_length = 64;
  EXPECT_GT(truth.SubTaskSeconds(ew), truth.SubTaskSeconds(mm));
}

TEST(KernelTruthTest, ShiftTimeLinearInBytes) {
  ChipSpec chip = ChipSpec::IpuMk2();
  KernelGroundTruth truth(chip);
  double t1 = truth.ShiftSeconds(1024);
  double t64 = truth.ShiftSeconds(64 * 1024);
  // Subtracting the fixed sync latency, time scales ~linearly with bytes.
  double per_byte1 = (t1 - chip.sync_latency_seconds) / 1024.0;
  double per_byte64 = (t64 - chip.sync_latency_seconds) / (64.0 * 1024.0);
  EXPECT_NEAR(per_byte64 / per_byte1, 1.0, 0.2);
  EXPECT_DOUBLE_EQ(truth.ShiftSeconds(0), 0.0);
}

TEST(KernelTruthTest, MultiChipShiftSlower) {
  KernelGroundTruth one(ChipSpec::IpuMk2());
  KernelGroundTruth two(ChipSpec::VIpu(2));
  EXPECT_GT(two.ShiftSeconds(64 * 1024), one.ShiftSeconds(64 * 1024));
}

}  // namespace
}  // namespace t10
