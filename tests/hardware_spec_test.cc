#include "src/hardware/chip_spec.h"

#include <gtest/gtest.h>

namespace t10 {
namespace {

TEST(ChipSpecTest, IpuMk2MatchesTable3) {
  ChipSpec ipu = ChipSpec::IpuMk2();
  EXPECT_EQ(ipu.num_cores, 1472);
  EXPECT_EQ(ipu.core_memory_bytes, 624 * 1024);
  // 896 MB total local memory (Table 3).
  EXPECT_NEAR(static_cast<double>(ipu.TotalMemoryBytes()) / (1024.0 * 1024.0), 896.0, 1.0);
  // ~8 TB/s aggregate inter-core bandwidth (paper §2.1).
  EXPECT_NEAR(ipu.link_bandwidth * ipu.num_cores / 1e12, 8.1, 0.2);
  // 250 TFLOPS FP16.
  EXPECT_NEAR(ipu.TotalFlops() / 1e12, 250.0, 0.1);
  EXPECT_EQ(ipu.num_chips(), 1);
  EXPECT_DOUBLE_EQ(ipu.EffectiveLinkBandwidth(), ipu.link_bandwidth);
}

TEST(ChipSpecTest, VIpuScalesCoresAndDegradesLinks) {
  ChipSpec two = ChipSpec::VIpu(2);
  EXPECT_EQ(two.num_cores, 2944);
  EXPECT_EQ(two.num_chips(), 2);
  // 26%-33% bandwidth drop (paper §6.5).
  double drop2 = 1.0 - two.EffectiveLinkBandwidth() / two.link_bandwidth;
  EXPECT_GE(drop2, 0.25);
  EXPECT_LE(drop2, 0.34);

  ChipSpec four = ChipSpec::VIpu(4);
  EXPECT_EQ(four.num_cores, 5888);
  double drop4 = 1.0 - four.EffectiveLinkBandwidth() / four.link_bandwidth;
  EXPECT_GT(drop4, drop2);
  EXPECT_LE(drop4, 0.34);
}

TEST(ChipSpecTest, ScaledIpuKeepsPerCoreResources) {
  ChipSpec small = ChipSpec::ScaledIpu(368);
  EXPECT_EQ(small.num_cores, 368);
  EXPECT_EQ(small.num_chips(), 1);
  EXPECT_EQ(small.core_memory_bytes, ChipSpec::IpuMk2().core_memory_bytes);
  EXPECT_DOUBLE_EQ(small.core_flops, ChipSpec::IpuMk2().core_flops);
}

TEST(GpuSpecTest, A100MatchesTable3) {
  GpuSpec a100 = GpuSpec::A100();
  EXPECT_NEAR(a100.peak_flops / 1e12, 312.0, 0.1);
  EXPECT_NEAR(a100.hbm_bandwidth / 1e9, 2000.0, 1.0);
  EXPECT_EQ(a100.l2_bytes, 40LL * 1024 * 1024);
}

}  // namespace
}  // namespace t10
