#include "src/hbm/hbm_emulator.h"

#include <gtest/gtest.h>

namespace t10 {
namespace {

HbmOp Op(double exec, std::int64_t weights) {
  HbmOp op;
  op.exec_seconds = exec;
  op.weight_bytes = weights;
  return op;
}

HbmConfig Config(double bandwidth) {
  HbmConfig config;
  config.bandwidth = bandwidth;
  return config;
}

TEST(HbmTest, SingleOpOverlapsComputeAndLoad) {
  // Two ops, each 1 GB of weights at 1 GB/s -> 1 s load each.
  std::vector<HbmOp> ops = {Op(2.0, 1 << 30), Op(2.0, 1 << 30)};
  HbmResult r = EmulateSingleOp(ops, Config(static_cast<double>(1 << 30)));
  // load0 (1s) + max(exec0, load1) (2s) + exec1 (2s) = 5s.
  EXPECT_NEAR(r.total_seconds, 5.0, 1e-9);
  EXPECT_EQ(r.num_groups, 2);
}

TEST(HbmTest, BandwidthBoundWhenLoadsDominate) {
  std::vector<HbmOp> ops = {Op(0.1, 1 << 30), Op(0.1, 1 << 30), Op(0.1, 1 << 30)};
  HbmResult r = EmulateSingleOp(ops, Config(static_cast<double>(1 << 30)));
  // 1 + 1 + 1 + 0.1: every stage stalls on the next load.
  EXPECT_NEAR(r.total_seconds, 3.1, 1e-9);
  EXPECT_GT(r.stall_seconds, 2.5);
}

TEST(HbmTest, ComputeBoundWhenHbmFast) {
  std::vector<HbmOp> ops = {Op(1.0, 1 << 20), Op(1.0, 1 << 20)};
  HbmResult r = EmulateSingleOp(ops, Config(1e12));
  EXPECT_NEAR(r.total_seconds, 2.0, 1e-4);
  EXPECT_LT(r.stall_seconds, 1e-4);
}

TEST(HbmTest, InterOpGroupingHelpsAtLowBandwidth) {
  // Two consecutive weight-heavy operators followed by one compute-heavy
  // operator (the LLM layer pattern): single-op prefetch stalls on the
  // back-to-back loads, while grouping overlaps the whole group's load with
  // the whole group's execution (paper §6.8).
  std::vector<HbmOp> ops;
  for (int i = 0; i < 6; ++i) {
    ops.push_back(Op(0.1, 100 << 20));  // Weight-heavy (1s load at 100MB/s).
    ops.push_back(Op(0.1, 100 << 20));
    ops.push_back(Op(2.0, 1 << 20));    // Compute-heavy.
  }
  HbmConfig config = Config(100.0 * (1 << 20));  // Slow HBM: 100 MiB/s.
  HbmResult single = EmulateSingleOp(ops, config);
  HbmResult grouped = EmulateInterOp(ops, config);
  EXPECT_LT(grouped.num_groups, static_cast<int>(ops.size()));
  EXPECT_LT(grouped.total_seconds, single.total_seconds);
  EXPECT_LT(grouped.stall_seconds, single.stall_seconds);
}

TEST(HbmTest, InterOpSlightlyWorseWhenComputeBound) {
  // Paper §6.8: with fast HBM, Inter Op is not better than Single Op (the
  // pipeline is compute-bound either way; grouping only coarsens it).
  std::vector<HbmOp> ops;
  for (int i = 0; i < 8; ++i) {
    ops.push_back(Op(1.0, 1 << 20));
  }
  HbmConfig config = Config(1e12);
  HbmResult single = EmulateSingleOp(ops, config);
  HbmResult grouped = EmulateInterOp(ops, config);
  EXPECT_GE(grouped.total_seconds, single.total_seconds - 1e-9);
}

TEST(HbmTest, OversizedOpBecomesSingletonGroup) {
  HbmConfig config = Config(1e9);
  std::vector<HbmOp> ops = {Op(1.0, config.prefetch_buffer_bytes + 1),
                            Op(1.0, 1 << 20)};
  HbmResult r = EmulateInterOp(ops, config);
  EXPECT_EQ(r.num_groups, 2);
}

TEST(HbmTest, EmptyModel) {
  HbmResult r = EmulateSingleOp({}, Config(1e9));
  EXPECT_DOUBLE_EQ(r.total_seconds, 0.0);
}

}  // namespace
}  // namespace t10
