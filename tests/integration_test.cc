// End-to-end integration: compile every model of the zoo on the full chip
// and check the global invariants that the paper's evaluation relies on —
// memory capacity respected, predicted-vs-measured agreement, T10 at least
// as good as the no-reconciliation policy, baselines well-formed on the same
// graphs, and the two executors (locality-checked interpreter and byte-level
// program executor) agreeing with each other.

#include <gtest/gtest.h>

#include "src/baselines/vgm.h"
#include "src/core/compiler.h"
#include "src/core/memory_planner.h"
#include "src/core/program_executor.h"
#include "src/ir/builder.h"
#include "src/models/zoo.h"

namespace t10 {
namespace {

class ModelIntegration : public ::testing::TestWithParam<int> {
 protected:
  static const ModelInfo& Info() { return EvaluationModels()[GetParam() % 4]; }
};

TEST_P(ModelIntegration, CompilesWithinMemoryAndAgreesWithCostModel) {
  ChipSpec chip = ChipSpec::IpuMk2();
  Compiler compiler(chip);
  const ModelInfo& info = Info();
  Graph graph = info.build(info.batch_sizes.front());
  CompiledModel model = compiler.Compile(graph);
  ASSERT_TRUE(model.fits) << info.name;
  ASSERT_EQ(static_cast<int>(model.ops.size()), graph.num_ops());
  double predicted_total = 0.0;
  for (const CompiledOp& op : model.ops) {
    EXPECT_LE(op.measured.per_core_bytes, chip.core_memory_bytes);
    EXPECT_GE(op.measured.cores_used, 1);
    EXPECT_LE(op.measured.cores_used, chip.num_cores);
    predicted_total += op.predicted.total_seconds();
  }
  // The fitted cost model and the ground truth agree within tens of percent
  // end-to-end (Fig 8 territory; convolutions carry the error).
  const double measured_total = model.TotalSeconds() - model.SetupSeconds();
  EXPECT_NEAR(predicted_total / measured_total, 1.0, 0.45) << info.name;
}

TEST_P(ModelIntegration, ReconciliationNeverHurts) {
  ChipSpec chip = ChipSpec::IpuMk2();
  const ModelInfo& info = Info();
  Graph graph = info.build(info.batch_sizes.front());
  CompileOptions with;
  CompileOptions without;
  without.inter_op_reconcile = false;
  CompiledModel reconciled = Compiler(chip, with).Compile(graph);
  CompiledModel greedy_off = Compiler(chip, without).Compile(graph);
  ASSERT_TRUE(reconciled.fits);
  ASSERT_TRUE(greedy_off.fits);
  EXPECT_LE(reconciled.TotalSeconds(), greedy_off.TotalSeconds() * 1.0001) << info.name;
}

TEST_P(ModelIntegration, MemoryPlanFits) {
  ChipSpec chip = ChipSpec::IpuMk2();
  Compiler compiler(chip);
  const ModelInfo& info = Info();
  Graph graph = info.build(info.batch_sizes.front());
  CompiledModel model = compiler.Compile(graph);
  ASSERT_TRUE(model.fits);
  MemoryPlan plan = PlanMemory(model, graph, chip);
  EXPECT_TRUE(plan.fits) << info.name << ": " << plan.DebugString();
  EXPECT_LT(plan.peak_bytes, plan.NaiveBytes()) << "liveness reuse had no effect";
}

TEST_P(ModelIntegration, BaselinesHandleSameGraph) {
  ChipSpec chip = ChipSpec::IpuMk2();
  const ModelInfo& info = Info();
  Graph graph = info.build(info.batch_sizes.front());
  for (VgmPlanner planner : {VgmPlanner::kRoller, VgmPlanner::kAnsor, VgmPlanner::kPopart}) {
    VgmModelResult result = VgmCompiler(chip, planner).Compile(graph);
    if (!result.fits) {
      continue;  // PopART may legitimately OOM.
    }
    EXPECT_EQ(static_cast<int>(result.per_op.size()), graph.num_ops());
    EXPECT_GT(result.TotalSeconds(), 0.0);
    EXPECT_GT(result.TransferSeconds(), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Models, ModelIntegration, ::testing::Range(0, 4));

TEST(LlmIntegration, AllLayersCompileAtBatchOne) {
  ChipSpec chip = ChipSpec::IpuMk2();
  Compiler compiler(chip);
  for (const ModelInfo& info : LlmModels()) {
    Graph graph = info.build(1);
    CompiledModel model = compiler.Compile(graph);
    EXPECT_TRUE(model.fits) << info.name;
    if (model.fits) {
      // Weight-resident decode: idle memory dominated by weights.
      EXPECT_GT(model.idle_bytes_per_core, 0) << info.name;
    }
  }
}

// The two execution paths — global-view interpreter with locality checks and
// the byte-level program executor — must agree on the same plan and inputs.
TEST(ExecutorEquivalence, InterpreterMatchesProgramExecutor) {
  ChipSpec chip = ChipSpec::IpuMk2();
  chip.num_cores = 12;
  chip.cores_per_chip = 12;
  GroundTruthTiming timing(chip);
  SearchConstraints constraints;
  constraints.parallelism_fraction = 0.5;
  constraints.max_rotating_dims = 1;

  Operator op = MatMulOp("mm", 6, 12, 8, DataType::kF32, "A", "B", "C");
  IntraOpResult result = SearchOperatorPlans(op, chip, timing, constraints);
  ASSERT_FALSE(result.pareto.empty());
  std::vector<HostTensor> inputs = {RandomHostTensor({6, 12}, 100),
                                    RandomHostTensor({12, 8}, 101)};
  Machine machine(chip);
  for (const PlanCandidate& candidate : result.pareto) {
    FunctionalStats stats;
    HostTensor interpreted = ExecutePlanFunctionally(candidate.plan, inputs, &stats);
    ProgramExecutor executor(machine, candidate.plan);
    HostTensor programmed = *executor.Run(inputs);
    ASSERT_EQ(interpreted.shape, programmed.shape);
    for (std::size_t i = 0; i < interpreted.data.size(); ++i) {
      ASSERT_NEAR(interpreted.data[i], programmed.data[i], 1e-4)
          << candidate.plan.DebugString();
    }
  }
}

}  // namespace
}  // namespace t10
