#include "src/ir/expr.h"

#include <gtest/gtest.h>

namespace t10 {
namespace {

std::vector<Axis> MatMulAxes() {
  return {{"m", 128, false}, {"n", 256, false}, {"k", 64, true}};
}

TEST(ExprTest, SimpleDimLength) {
  auto axes = MatMulAxes();
  EXPECT_EQ(DimLength(axes, DimRef{0}), 128);
  EXPECT_EQ(DimLength(axes, DimRef{2}), 64);
}

TEST(ExprTest, CompoundDimLength) {
  // h + kh with len(h)=10, len(kh)=3 spans 12 values.
  std::vector<Axis> axes = {{"h", 10, false}, {"kh", 3, true}};
  EXPECT_EQ(DimLength(axes, DimRef{0, 1}), 12);
}

TEST(ExprTest, NumElementsAndBytes) {
  auto axes = MatMulAxes();
  TensorRef a{"A", DataType::kF16, {DimRef{0}, DimRef{2}}};
  EXPECT_EQ(NumElements(axes, a), 128 * 64);
  EXPECT_EQ(ByteSize(axes, a), 128 * 64 * 2);
  TensorRef a32{"A", DataType::kF32, {DimRef{0}, DimRef{2}}};
  EXPECT_EQ(ByteSize(axes, a32), 128 * 64 * 4);
}

TEST(ExprTest, TensorShape) {
  auto axes = MatMulAxes();
  TensorRef c{"C", DataType::kF16, {DimRef{0}, DimRef{1}}};
  EXPECT_EQ(TensorShape(axes, c), (std::vector<std::int64_t>{128, 256}));
}

TEST(ExprTest, ScalarTensorHasOneElement) {
  auto axes = MatMulAxes();
  TensorRef s{"s", DataType::kF32, {}};
  EXPECT_EQ(NumElements(axes, s), 1);
}

TEST(DataTypeTest, SizesAndNames) {
  EXPECT_EQ(DataTypeSize(DataType::kF16), 2);
  EXPECT_EQ(DataTypeSize(DataType::kF32), 4);
  EXPECT_EQ(DataTypeSize(DataType::kI32), 4);
  EXPECT_EQ(DataTypeName(DataType::kF16), "f16");
  EXPECT_EQ(DataTypeFromName("f32"), DataType::kF32);
}

}  // namespace
}  // namespace t10
