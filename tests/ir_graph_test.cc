#include "src/ir/graph.h"

#include <gtest/gtest.h>

#include "src/ir/builder.h"

namespace t10 {
namespace {

Graph TwoLayerMlp() {
  Graph g("mlp");
  g.Add(MatMulOp("fc1", 32, 128, 256, DataType::kF16, "x", "w1", "h1"));
  g.Add(ElementwiseOp("relu", {32, 256}, DataType::kF16, "h1", "h2"));
  g.Add(MatMulOp("fc2", 32, 256, 64, DataType::kF16, "h2", "w2", "y"));
  g.MarkWeight("w1");
  g.MarkWeight("w2");
  return g;
}

TEST(GraphTest, TensorsAndLinks) {
  Graph g = TwoLayerMlp();
  EXPECT_EQ(g.num_ops(), 3);
  const TensorInfo& h1 = g.tensor("h1");
  EXPECT_EQ(h1.producer, 0);
  EXPECT_EQ(h1.consumers, (std::vector<int>{1}));
  EXPECT_EQ(h1.bytes, 32 * 256 * 2);
  EXPECT_TRUE(g.tensor("w1").is_weight);
  EXPECT_FALSE(g.tensor("x").is_weight);
}

TEST(GraphTest, WeightBytes) {
  Graph g = TwoLayerMlp();
  EXPECT_EQ(g.WeightBytes(), (128 * 256 + 256 * 64) * 2);
  EXPECT_GT(g.TotalTensorBytes(), g.WeightBytes());
}

TEST(GraphTest, InputsAndOutputs) {
  Graph g = TwoLayerMlp();
  EXPECT_EQ(g.InputNames(), (std::vector<std::string>{"x"}));
  EXPECT_EQ(g.OutputNames(), (std::vector<std::string>{"y"}));
}

TEST(GraphTest, LiveSets) {
  Graph g = TwoLayerMlp();
  auto live = g.LiveSets();
  ASSERT_EQ(live.size(), 3u);
  // Weights are live everywhere.
  for (const auto& set : live) {
    EXPECT_TRUE(set.count("w1"));
    EXPECT_TRUE(set.count("w2"));
  }
  // h1 is live during op 0 (produced) and op 1 (consumed), dead after.
  EXPECT_TRUE(live[0].count("h1"));
  EXPECT_TRUE(live[1].count("h1"));
  EXPECT_FALSE(live[2].count("h1"));
  // Graph output y stays live to the end.
  EXPECT_TRUE(live[2].count("y"));
}

TEST(GraphTest, SharedWeightConsumedTwice) {
  Graph g("tied");
  g.Add(MatMulOp("a", 8, 16, 16, DataType::kF16, "x", "w", "h"));
  g.Add(MatMulOp("b", 8, 16, 16, DataType::kF16, "h", "w", "y"));
  g.MarkWeight("w");
  EXPECT_EQ(g.tensor("w").consumers, (std::vector<int>{0, 1}));
}

TEST(GraphDeathTest, ShapeMismatchRejected) {
  Graph g("bad");
  g.Add(MatMulOp("fc1", 32, 128, 256, DataType::kF16, "x", "w1", "h1"));
  EXPECT_DEATH(g.Add(MatMulOp("fc2", 32, 999, 64, DataType::kF16, "h1", "w2", "y")),
               "shape mismatch");
}

TEST(GraphDeathTest, DoubleProducerRejected) {
  Graph g("bad");
  g.Add(ElementwiseOp("e1", {4}, DataType::kF16, "x", "y"));
  EXPECT_DEATH(g.Add(ElementwiseOp("e2", {4}, DataType::kF16, "x", "y")), "produced twice");
}

TEST(GraphDeathTest, WeightWithProducerRejected) {
  Graph g("bad");
  g.Add(ElementwiseOp("e1", {4}, DataType::kF16, "x", "y"));
  EXPECT_DEATH(g.MarkWeight("y"), "producer");
}

}  // namespace
}  // namespace t10
