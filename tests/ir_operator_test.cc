#include "src/ir/operator.h"

#include <gtest/gtest.h>

#include "src/ir/builder.h"

namespace t10 {
namespace {

TEST(OperatorTest, MatMulStructure) {
  Operator op = MatMulOp("mm", 128, 64, 256, DataType::kF16, "A", "B", "C");
  EXPECT_EQ(op.kind(), OpKind::kContraction);
  EXPECT_EQ(op.axes().size(), 3u);
  EXPECT_EQ(op.FindAxis("m"), 0);
  EXPECT_EQ(op.FindAxis("k"), 2);
  EXPECT_EQ(op.FindAxis("zzz"), -1);
  EXPECT_EQ(op.ReductionAxes(), (std::vector<int>{2}));
  EXPECT_DOUBLE_EQ(op.Flops(), 2.0 * 128 * 64 * 256);
  EXPECT_EQ(op.OutputBytes(), 128 * 256 * 2);
  EXPECT_EQ(op.InputBytes(), (128 * 64 + 64 * 256) * 2);
}

TEST(OperatorTest, TensorUsesAxis) {
  Operator op = MatMulOp("mm", 8, 8, 8, DataType::kF16, "A", "B", "C");
  const TensorRef& a = op.inputs()[0];
  EXPECT_TRUE(Operator::TensorUsesAxis(a, 0));   // m.
  EXPECT_FALSE(Operator::TensorUsesAxis(a, 1));  // n.
  EXPECT_TRUE(Operator::TensorUsesAxis(a, 2));   // k.
}

TEST(OperatorTest, Conv2dCompoundDims) {
  Operator op =
      Conv2dOp("conv", 1, 3, 64, 112, 112, 7, 7, DataType::kF16, "in", "w", "out");
  EXPECT_EQ(op.kind(), OpKind::kContraction);
  // Input dim 2 maps to h+kh.
  const TensorRef& input = op.inputs()[0];
  EXPECT_TRUE(input.dims[2].compound());
  EXPECT_EQ(DimLength(op.axes(), input.dims[2]), 112 + 7 - 1);
  EXPECT_TRUE(Operator::TensorUsesAxis(input, op.FindAxis("kh")));
  // Weight is [f, c, kh, kw].
  EXPECT_EQ(NumElements(op.axes(), op.inputs()[1]), 64 * 3 * 7 * 7);
  // 2 * b*f*h*w*c*kh*kw flops.
  EXPECT_DOUBLE_EQ(op.Flops(), 2.0 * 64 * 112 * 112 * 3 * 7 * 7);
}

TEST(OperatorTest, ElementwiseCost) {
  Operator op = ElementwiseOp("gelu", {32, 1024}, DataType::kF16, "x", "y", 8.0);
  EXPECT_DOUBLE_EQ(op.Flops(), 8.0 * 32 * 1024);
  EXPECT_EQ(op.OutputBytes(), 32 * 1024 * 2);
}

TEST(OperatorTest, BinaryShapesMatch) {
  Operator op = BinaryOp("add", {4, 4}, DataType::kF32, "a", "b", "c");
  EXPECT_EQ(op.inputs().size(), 2u);
  EXPECT_EQ(op.InputBytes(), 2 * 4 * 4 * 4);
}

TEST(OperatorTest, ReduceDropsTrailingAxis) {
  Operator op = ReduceOp("sum", {16, 64}, DataType::kF32, "x", "y");
  EXPECT_EQ(op.kind(), OpKind::kReduceSum);
  EXPECT_EQ(op.output().dims.size(), 1u);
  EXPECT_EQ(op.ReductionAxes().size(), 1u);
  EXPECT_EQ(NumElements(op.axes(), op.output()), 16);
}

TEST(OperatorTest, GatherIsOneHotContraction) {
  Operator op = GatherOp("emb", 128, 50000, 768, DataType::kF16, "ids", "table", "out");
  EXPECT_EQ(op.kind(), OpKind::kGather);
  EXPECT_EQ(op.inputs()[0].dtype, DataType::kI32);
  EXPECT_EQ(NumElements(op.axes(), op.inputs()[1]), 50000 * 768);
  // Gather flops = output elements (data movement).
  EXPECT_DOUBLE_EQ(op.Flops(), 128.0 * 768.0);
}

TEST(OperatorTest, BatchedMatMul) {
  Operator op = BatchedMatMulOp("bmm", 12, 128, 64, 128, DataType::kF16, "q", "k", "s");
  EXPECT_EQ(op.axes().size(), 4u);
  EXPECT_DOUBLE_EQ(op.Flops(), 2.0 * 12 * 128 * 64 * 128);
}

TEST(OperatorDeathTest, OutputWithReductionAxisRejected) {
  std::vector<Axis> axes = {{"m", 4, false}, {"k", 4, true}};
  TensorRef in{"A", DataType::kF16, {DimRef{0}, DimRef{1}}};
  TensorRef out{"C", DataType::kF16, {DimRef{0}, DimRef{1}}};
  EXPECT_DEATH(Operator("bad", OpKind::kContraction, axes, {in}, out), "reduction");
}

TEST(OperatorDeathTest, ZeroLengthAxisRejected) {
  std::vector<Axis> axes = {{"m", 0, false}};
  TensorRef t{"A", DataType::kF16, {DimRef{0}}};
  EXPECT_DEATH(Operator("bad", OpKind::kElementwise, axes, {t}, t), "length");
}

}  // namespace
}  // namespace t10
