#include "src/ir/parser.h"

#include <gtest/gtest.h>

namespace t10 {
namespace {

TEST(ParserTest, ParsesMlp) {
  const char* text = R"(
    # A two-layer MLP.
    model tiny-mlp
    matmul name=fc1 m=32 k=128 n=256 a=x b=w1 c=h1 weight=w1
    unary  name=relu shape=32x256 in=h1 out=h2
    matmul name=fc2 m=32 k=256 n=64 a=h2 b=w2 c=y weight=w2 dtype=f16
  )";
  Graph g = ParseModelText(text);
  EXPECT_EQ(g.name(), "tiny-mlp");
  EXPECT_EQ(g.num_ops(), 3);
  EXPECT_TRUE(g.tensor("w1").is_weight);
  EXPECT_TRUE(g.tensor("w2").is_weight);
  EXPECT_EQ(g.tensor("h2").shape, (std::vector<std::int64_t>{32, 256}));
}

TEST(ParserTest, AllOpKinds) {
  const char* text = R"(
    model kinds
    gather name=emb n=16 vocab=100 embed=32 idx=ids table=tbl out=e0 weight=tbl
    unary  name=act shape=16x32 in=e0 out=e1 cost=8
    binary name=add shape=16x32 lhs=e1 rhs=e0 out=e2
    reduce name=sum shape=16x32 in=e2 out=e3
    vendor name=sort shape=16 in=e3 out=e4
    conv2d name=c1 batch=1 cin=4 cout=8 h=6 w=6 kh=3 kw=3 in=img wt=k1 out=fm weight=k1
    bmm    name=att batch=2 m=16 k=8 n=16 a=q b=kk c=s
  )";
  Graph g = ParseModelText(text);
  EXPECT_EQ(g.num_ops(), 7);
  EXPECT_EQ(g.op(0).kind(), OpKind::kGather);
  EXPECT_EQ(g.op(1).kind(), OpKind::kElementwise);
  EXPECT_DOUBLE_EQ(g.op(1).elementwise_cost(), 8.0);
  EXPECT_EQ(g.op(2).kind(), OpKind::kElementwise);
  EXPECT_EQ(g.op(3).kind(), OpKind::kReduceSum);
  EXPECT_EQ(g.op(4).kind(), OpKind::kVendor);
  EXPECT_EQ(g.op(5).kind(), OpKind::kContraction);
  EXPECT_EQ(g.op(6).kind(), OpKind::kContraction);
  // Conv input is pre-padded: 6+3-1 = 8.
  EXPECT_EQ(g.tensor("img").shape, (std::vector<std::int64_t>{1, 4, 8, 8}));
}

TEST(ParserTest, CommentsAndBlankLinesIgnored) {
  Graph g = ParseModelText("\n# only comments\n\nmodel empty\n");
  EXPECT_EQ(g.num_ops(), 0);
  EXPECT_EQ(g.name(), "empty");
}

TEST(ParserTest, MultipleWeightsOnOneLine) {
  const char* text = R"(
    binary name=scale shape=8 lhs=g0 rhs=beta out=y weight=g0,beta
  )";
  Graph g = ParseModelText(text);
  EXPECT_TRUE(g.tensor("g0").is_weight);
  EXPECT_TRUE(g.tensor("beta").is_weight);
}

// The sample model files shipped under models/ must parse and stay
// well-formed (they are the t10c driver's demo inputs).
TEST(ParserTest, ShippedModelFilesParse) {
  const std::string root = T10_SOURCE_DIR;
  Graph mlp = ParseModelFile(root + "/models/mlp.t10");
  EXPECT_EQ(mlp.num_ops(), 5);
  EXPECT_EQ(mlp.WeightBytes(), (512 * 1024 + 1024 * 1024 + 1024 * 512) * 2);
  Graph block = ParseModelFile(root + "/models/transformer_block.t10");
  EXPECT_EQ(block.num_ops(), 14);
  EXPECT_TRUE(block.tensor("wq").is_weight);
  Graph conv = ParseModelFile(root + "/models/conv_stack.t10");
  EXPECT_EQ(conv.num_ops(), 8);
  // Stride-2 stem reads a 5x5 window over a 2x-strided grid: 2*31+5 = 67.
  EXPECT_EQ(conv.tensor("image").shape, (std::vector<std::int64_t>{4, 3, 67, 67}));
}

TEST(ParserDeathTest, MissingArgument) {
  EXPECT_DEATH(ParseModelText("matmul name=x m=4 k=4"), "missing argument");
}

TEST(ParserDeathTest, UnknownDirective) {
  EXPECT_DEATH(ParseModelText("frobnicate name=x"), "unknown directive");
}

}  // namespace
}  // namespace t10
