#include "src/ir/parser.h"

#include <gtest/gtest.h>

namespace t10 {
namespace {

TEST(ParserTest, ParsesMlp) {
  const char* text = R"(
    # A two-layer MLP.
    model tiny-mlp
    matmul name=fc1 m=32 k=128 n=256 a=x b=w1 c=h1 weight=w1
    unary  name=relu shape=32x256 in=h1 out=h2
    matmul name=fc2 m=32 k=256 n=64 a=h2 b=w2 c=y weight=w2 dtype=f16
  )";
  Graph g = ParseModelText(text);
  EXPECT_EQ(g.name(), "tiny-mlp");
  EXPECT_EQ(g.num_ops(), 3);
  EXPECT_TRUE(g.tensor("w1").is_weight);
  EXPECT_TRUE(g.tensor("w2").is_weight);
  EXPECT_EQ(g.tensor("h2").shape, (std::vector<std::int64_t>{32, 256}));
}

TEST(ParserTest, AllOpKinds) {
  const char* text = R"(
    model kinds
    gather name=emb n=16 vocab=100 embed=32 idx=ids table=tbl out=e0 weight=tbl
    unary  name=act shape=16x32 in=e0 out=e1 cost=8
    binary name=add shape=16x32 lhs=e1 rhs=e0 out=e2
    reduce name=sum shape=16x32 in=e2 out=e3
    vendor name=sort shape=16 in=e3 out=e4
    conv2d name=c1 batch=1 cin=4 cout=8 h=6 w=6 kh=3 kw=3 in=img wt=k1 out=fm weight=k1
    bmm    name=att batch=2 m=16 k=8 n=16 a=q b=kk c=s
  )";
  Graph g = ParseModelText(text);
  EXPECT_EQ(g.num_ops(), 7);
  EXPECT_EQ(g.op(0).kind(), OpKind::kGather);
  EXPECT_EQ(g.op(1).kind(), OpKind::kElementwise);
  EXPECT_DOUBLE_EQ(g.op(1).elementwise_cost(), 8.0);
  EXPECT_EQ(g.op(2).kind(), OpKind::kElementwise);
  EXPECT_EQ(g.op(3).kind(), OpKind::kReduceSum);
  EXPECT_EQ(g.op(4).kind(), OpKind::kVendor);
  EXPECT_EQ(g.op(5).kind(), OpKind::kContraction);
  EXPECT_EQ(g.op(6).kind(), OpKind::kContraction);
  // Conv input is pre-padded: 6+3-1 = 8.
  EXPECT_EQ(g.tensor("img").shape, (std::vector<std::int64_t>{1, 4, 8, 8}));
}

TEST(ParserTest, CommentsAndBlankLinesIgnored) {
  Graph g = ParseModelText("\n# only comments\n\nmodel empty\n");
  EXPECT_EQ(g.num_ops(), 0);
  EXPECT_EQ(g.name(), "empty");
}

TEST(ParserTest, MultipleWeightsOnOneLine) {
  const char* text = R"(
    binary name=scale shape=8 lhs=g0 rhs=beta out=y weight=g0,beta
  )";
  Graph g = ParseModelText(text);
  EXPECT_TRUE(g.tensor("g0").is_weight);
  EXPECT_TRUE(g.tensor("beta").is_weight);
}

// The sample model files shipped under models/ must parse and stay
// well-formed (they are the t10c driver's demo inputs).
TEST(ParserTest, ShippedModelFilesParse) {
  const std::string root = T10_SOURCE_DIR;
  Graph mlp = ParseModelFile(root + "/models/mlp.t10");
  EXPECT_EQ(mlp.num_ops(), 5);
  EXPECT_EQ(mlp.WeightBytes(), (512 * 1024 + 1024 * 1024 + 1024 * 512) * 2);
  Graph block = ParseModelFile(root + "/models/transformer_block.t10");
  EXPECT_EQ(block.num_ops(), 14);
  EXPECT_TRUE(block.tensor("wq").is_weight);
  Graph conv = ParseModelFile(root + "/models/conv_stack.t10");
  EXPECT_EQ(conv.num_ops(), 8);
  // Stride-2 stem reads a 5x5 window over a 2x-strided grid: 2*31+5 = 67.
  EXPECT_EQ(conv.tensor("image").shape, (std::vector<std::int64_t>{4, 3, 67, 67}));
}

TEST(ParserDeathTest, MissingArgument) {
  EXPECT_DEATH(ParseModelText("matmul name=x m=4 k=4"), "missing argument");
}

TEST(ParserDeathTest, UnknownDirective) {
  EXPECT_DEATH(ParseModelText("frobnicate name=x"), "unknown directive");
}

// Recoverable parsing: TryParseModelText reports malformed input as
// kInvalidArgument with a "line N:" prefix instead of aborting; the t10c
// driver turns these into exit code 2.
struct MalformedCase {
  const char* name;
  const char* text;
  const char* message_fragment;
};

class ParserMalformedTest : public ::testing::TestWithParam<MalformedCase> {};

TEST_P(ParserMalformedTest, ReportsInvalidArgument) {
  StatusOr<Graph> graph = TryParseModelText(GetParam().text);
  ASSERT_FALSE(graph.ok()) << GetParam().name;
  EXPECT_EQ(graph.status().code(), StatusCode::kInvalidArgument) << GetParam().name;
  EXPECT_NE(graph.status().message().find("line "), std::string::npos)
      << GetParam().name << ": " << graph.status().ToString();
  EXPECT_NE(graph.status().message().find(GetParam().message_fragment), std::string::npos)
      << GetParam().name << ": " << graph.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParserMalformedTest,
    ::testing::Values(
        MalformedCase{"missing_argument", "matmul name=x m=4 k=4", "missing argument"},
        MalformedCase{"unknown_directive", "frobnicate name=x", "unknown directive"},
        MalformedCase{"bad_integer", "matmul name=x m=four k=4 n=4 a=a b=b c=c",
                      "bad integer"},
        MalformedCase{"nonpositive_axis", "matmul name=x m=0 k=4 n=4 a=a b=b c=c",
                      "must be positive"},
        MalformedCase{"negative_dim", "unary name=u shape=8x-2 in=a out=b", "bad shape"},
        MalformedCase{"bad_dtype",
                      "matmul name=x m=4 k=4 n=4 a=a b=b c=c dtype=f64", "dtype"},
        MalformedCase{"bad_cost", "unary name=u shape=8 in=a out=b cost=cheap", "number"},
        MalformedCase{"unknown_weight_tensor",
                      "matmul name=x m=4 k=4 n=4 a=a b=b c=c weight=nope", "weight"},
        MalformedCase{"produced_weight",
                      "matmul name=x m=4 k=4 n=4 a=a b=b c=c weight=c", "weight"}),
    [](const ::testing::TestParamInfo<MalformedCase>& info) { return info.param.name; });

TEST(ParserMalformedTest, UnreadableFileIsError) {
  StatusOr<Graph> graph = TryParseModelFile("/nonexistent/model.t10");
  ASSERT_FALSE(graph.ok());
  EXPECT_EQ(graph.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParserMalformedTest, FirstErrorWins) {
  // Two bad lines: the reported line number is the first one (line 2 of the
  // text; line 1 is the leading newline).
  StatusOr<Graph> graph = TryParseModelText("\nfrobnicate name=x\nwibble name=y\n");
  ASSERT_FALSE(graph.ok());
  EXPECT_NE(graph.status().message().find("line 2:"), std::string::npos)
      << graph.status().ToString();
}

TEST(ParserMalformedTest, ValidTextStillParses) {
  StatusOr<Graph> graph =
      TryParseModelText("model ok\nmatmul name=x m=4 k=4 n=4 a=a b=b c=c weight=b\n");
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph->num_ops(), 1);
  EXPECT_TRUE(graph->tensor("b").is_weight);
}

}  // namespace
}  // namespace t10
