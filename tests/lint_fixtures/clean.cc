// Lint fixture: nothing for t10-lint to flag.

namespace lint_fixture {

// NOLINTNEXTLINE(lint.example.rule): a well-formed suppression carries a category and a reason.
inline int Answer() { return 42; }

}  // namespace lint_fixture
