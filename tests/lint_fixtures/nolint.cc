// Lint fixture: suppression hygiene. Bare markers and reasonless categories
// are malformed; the full form below silences the raw-primitive rule.

namespace lint_fixture {

int bare_marker = 0;  // NOLINT
int no_reason = 0;    // NOLINT(lint.sync.raw-primitive)
// NOLINTNEXTLINE(lint.sync.raw-primitive): fixture shows a well-formed suppression.
std::mutex suppressed_mu;
std::mutex reported_mu;

}  // namespace lint_fixture
