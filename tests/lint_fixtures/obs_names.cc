// Lint fixture: observability name literals at metric call sites.

namespace lint_fixture {

struct Registry {
  int GetCounter(const char* name);
  int GetGauge(const char* name);
  int GetHistogram(const char* name);
};

void Use(Registry& metrics) {
  metrics.GetCounter("serve.shed.count");     // Registered: clean.
  metrics.GetCounter("Serve.Bad-Grammar");    // Violates the dotted grammar.
  metrics.GetGauge("serve.fixture.unknown");  // Well-formed but unregistered.
  metrics.GetHistogram(
      "compiler.pass.fixture_pass.seconds");  // Wildcard-registered: clean.
  metrics.GetGauge("cluster.partition.stages");          // Registered: clean.
  metrics.GetCounter("router.pipeline.handoff.count");   // Registered: clean.
  metrics.GetCounter("sim.machine.interchip_bytes");     // Registered: clean.
  metrics.GetCounter("router.pipeline.fixture.count");   // Unregistered.
  metrics.GetCounter("router.cluster.repartition.count");      // Registered: clean.
  metrics.GetHistogram("router.cluster.repartition.seconds");  // Registered: clean.
}

}  // namespace lint_fixture
