// Lint fixture: raw primitives. A std::mutex mention in this comment and
// in the string below must not fire; the include and declarations must.

#include <mutex>

namespace lint_fixture {

std::mutex global_mu;

void Locked() {
  std::lock_guard<std::mutex> lock(global_mu);
}

const char* kProse = "std::mutex inside a string literal";

}  // namespace lint_fixture
