// Cross-module coverage: HBM adapters, GPU roofline sweeps, VGM tile
// properties, setup-byte accounting, and RNG determinism — behaviours used
// by the benches but not pinned elsewhere.

#include <gtest/gtest.h>

#include "src/baselines/gpu_roofline.h"
#include "src/baselines/vgm.h"
#include "src/core/compiler.h"
#include "src/hbm/hbm_emulator.h"
#include "src/ir/builder.h"
#include "src/models/zoo.h"
#include "src/util/rng.h"

namespace t10 {
namespace {

ChipSpec SmallChip(int cores = 64) {
  ChipSpec chip = ChipSpec::IpuMk2();
  chip.num_cores = cores;
  chip.cores_per_chip = cores;
  return chip;
}

TEST(HbmAdapterTest, CompiledAndVgmAdaptersAgreeOnWeights) {
  ChipSpec chip = SmallChip();
  Graph g("mlp");
  g.Add(MatMulOp("fc1", 32, 256, 512, DataType::kF16, "x", "w1", "h1"));
  g.Add(MatMulOp("fc2", 32, 512, 256, DataType::kF16, "h1", "w2", "y"));
  g.MarkWeight("w1");
  g.MarkWeight("w2");
  Compiler compiler(chip);
  CompiledModel t10m = compiler.Compile(g);
  ASSERT_TRUE(t10m.fits);
  VgmModelResult roller = VgmCompiler(chip, VgmPlanner::kRoller).Compile(g);
  ASSERT_TRUE(roller.fits);

  auto a = HbmOpsFromCompiled(t10m, g);
  auto b = HbmOpsFromVgm(roller, g);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].weight_bytes, b[i].weight_bytes) << i;  // Same graph weights.
    EXPECT_GT(a[i].exec_seconds, 0.0);
  }
  EXPECT_EQ(a[0].weight_bytes, 256 * 512 * 2);
}

TEST(GpuRooflineTest, LatencyMonotoneInBatch) {
  GpuRooflineExecutor gpu(GpuSpec::A100());
  double previous = 0.0;
  for (std::int64_t batch : {1, 4, 16, 64, 256}) {
    Graph g("fc");
    g.Add(MatMulOp("fc", batch, 2048, 2048, DataType::kF16, "x", "w", "y"));
    g.MarkWeight("w");
    const double t = gpu.Run(g).TotalSeconds();
    EXPECT_GE(t, previous);
    previous = t;
  }
}

TEST(GpuRooflineTest, CrossoverBatchExists) {
  // Somewhere between batch 1 and 4096 the matmul flips from HBM- to
  // FLOPs-bound (the mechanism behind Fig 22's crossover).
  GpuRooflineExecutor gpu(GpuSpec::A100());
  bool seen_memory_bound = false;
  bool seen_flops_bound = false;
  for (std::int64_t batch = 1; batch <= 4096; batch *= 4) {
    Graph g("fc");
    g.Add(MatMulOp("fc", batch, 2048, 2048, DataType::kF16, "x", "w", "y"));
    g.MarkWeight("w");
    GpuModelResult result = gpu.Run(g);
    if (result.per_op[0].memory_bound()) {
      EXPECT_FALSE(seen_flops_bound) << "regime must flip once";
      seen_memory_bound = true;
    } else {
      seen_flops_bound = true;
    }
  }
  EXPECT_TRUE(seen_memory_bound);
  EXPECT_TRUE(seen_flops_bound);
}

TEST(VgmTileTest, TilesAreDivisorAligned) {
  VgmCompiler compiler(SmallChip(), VgmPlanner::kRoller);
  Operator op = MatMulOp("mm", 96, 384, 160, DataType::kF16, "A", "B", "C");
  auto cost = compiler.PlanOp(op, 128 * 1024);
  ASSERT_TRUE(cost.has_value());
  for (std::size_t a = 0; a < op.axes().size(); ++a) {
    EXPECT_EQ(op.axes()[a].length % cost->tile[a], 0) << "axis " << a;
  }
  EXPECT_EQ(cost->num_tiles * 1,
            (96 / cost->tile[0]) * (160 / cost->tile[1]) * (384 / cost->tile[2]));
}

TEST(VgmTileTest, LargerBudgetNeverSlower) {
  VgmCompiler compiler(SmallChip(1472), VgmPlanner::kRoller);
  Operator op = MatMulOp("mm", 512, 1024, 512, DataType::kF16, "A", "B", "C");
  double previous = 1e9;
  for (std::int64_t budget : {16 * 1024, 64 * 1024, 256 * 1024}) {
    auto cost = compiler.PlanOp(op, budget);
    ASSERT_TRUE(cost.has_value());
    EXPECT_LE(cost->total_seconds(), previous * 1.05) << budget;
    previous = cost->total_seconds();
  }
}

TEST(SetupBytesTest, MatchesWindowGrowth) {
  OpPlanOption idle;
  idle.plan_index = 0;
  idle.weight_windows = {100, 4000};
  OpPlanOption active;
  active.plan_index = 1;
  active.weight_windows = {700, 1000};
  // Only growth is fetched: (700-100) + 0.
  EXPECT_EQ(SetupFetchBytes(idle, active), 600);
  EXPECT_EQ(SetupFetchBytes(active, idle), 3000);
  EXPECT_EQ(SetupFetchBytes(idle, idle), 0);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000000), b.Uniform(0, 1000000));
  }
  Rng c(100);
  bool differs = false;
  Rng a2(99);
  for (int i = 0; i < 10; ++i) {
    differs = differs || (a2.Uniform(0, 1000000) != c.Uniform(0, 1000000));
  }
  EXPECT_TRUE(differs);
}

TEST(CompilerDeterminismTest, RepeatCompilesIdentical) {
  ChipSpec chip = SmallChip();
  Graph g = BuildNerf(1);
  CompiledModel first = Compiler(chip).Compile(g);
  CompiledModel second = Compiler(chip).Compile(g);
  ASSERT_EQ(first.fits, second.fits);
  ASSERT_EQ(first.ops.size(), second.ops.size());
  EXPECT_DOUBLE_EQ(first.TotalSeconds(), second.TotalSeconds());
  EXPECT_EQ(first.idle_bytes_per_core, second.idle_bytes_per_core);
  for (std::size_t i = 0; i < first.ops.size(); ++i) {
    EXPECT_EQ(first.ops[i].active_plan.fop(), second.ops[i].active_plan.fop()) << i;
  }
}

}  // namespace
}  // namespace t10
