#include <gtest/gtest.h>

#include "src/core/compiler.h"
#include "src/core/memory_planner.h"
#include "src/models/zoo.h"

namespace t10 {
namespace {

TEST(TrainingTest, GraphShape) {
  Graph g = BuildMlpTrainingStep(32, 3, 128);
  // Per layer: fwd, relu, dact, dw, dx, sgd = 6 ops; + loss grad.
  EXPECT_EQ(g.num_ops(), 3 * 6 + 1);
  // Weights consumed by forward, dx and sgd.
  EXPECT_EQ(g.tensor("l0_w").consumers.size(), 3u);
  // The forward activation is re-consumed by the backward pass: long live
  // range across the whole step.
  const TensorInfo& h0 = g.tensor("l0_h");
  EXPECT_EQ(h0.consumers.size(), 2u);
}

TEST(TrainingTest, BackwardContractionsWellFormed) {
  Graph g = BuildMlpTrainingStep(16, 2, 64);
  for (const Operator& op : g.ops()) {
    if (op.name().find("_dw") != std::string::npos) {
      // dW reduces over the batch axis.
      ASSERT_EQ(op.ReductionAxes().size(), 1u) << op.name();
      EXPECT_EQ(op.axes()[op.ReductionAxes()[0]].name, "m");
      EXPECT_DOUBLE_EQ(op.Flops(), 2.0 * 16 * 64 * 64);
    }
    if (op.name().find("_dx") != std::string::npos) {
      // dX reduces over the output-feature axis.
      ASSERT_EQ(op.ReductionAxes().size(), 1u) << op.name();
      EXPECT_EQ(op.axes()[op.ReductionAxes()[0]].name, "n");
    }
  }
}

TEST(TrainingTest, TrainingStepCompilesEndToEnd) {
  ChipSpec chip = ChipSpec::IpuMk2();
  chip.num_cores = 128;
  chip.cores_per_chip = 128;
  Compiler compiler(chip);
  Graph g = BuildMlpTrainingStep(64, 4, 256);
  CompiledModel model = compiler.Compile(g);
  ASSERT_TRUE(model.fits);
  EXPECT_EQ(static_cast<int>(model.ops.size()), g.num_ops());
  // The kept-for-backward activations stretch the memory plan but it still
  // fits, and reuse still helps.
  MemoryPlan plan = PlanMemory(model, g, chip);
  EXPECT_TRUE(plan.fits) << plan.DebugString();
  EXPECT_LT(plan.peak_bytes, plan.NaiveBytes());
}

TEST(TrainingTest, BackwardCostsRoughlyTwiceForward) {
  ChipSpec chip = ChipSpec::IpuMk2();
  chip.num_cores = 128;
  chip.cores_per_chip = 128;
  Compiler compiler(chip);
  Graph g = BuildMlpTrainingStep(64, 4, 256);
  CompiledModel model = compiler.Compile(g);
  ASSERT_TRUE(model.fits);
  double forward = 0.0;
  double backward = 0.0;
  for (const CompiledOp& op : model.ops) {
    const std::string& name = g.op(op.op_index).name();
    if (name.find("_fwd") != std::string::npos) {
      forward += op.measured.total_seconds();
    }
    if (name.find("_dw") != std::string::npos || name.find("_dx") != std::string::npos) {
      backward += op.measured.total_seconds();
    }
  }
  EXPECT_GT(backward, 1.2 * forward);
  EXPECT_LT(backward, 4.0 * forward);
}

}  // namespace
}  // namespace t10
