#include "src/models/zoo.h"

#include <gtest/gtest.h>

namespace t10 {
namespace {

// Table 2 parameter counts (FP16 weights; 2 bytes per parameter).
double Params(const Graph& g) { return static_cast<double>(g.WeightBytes()) / 2.0; }

TEST(ZooTest, BertLargeParameterCount) {
  Graph g = BuildBertLarge(1);
  // 24 x (4*1024^2 + 2*1024*4096) ~ 302M (embeddings excluded; Table 2 lists
  // 340M including them).
  EXPECT_NEAR(Params(g) / 1e6, 302.0, 5.0);
  EXPECT_GT(g.num_ops(), 24 * 10);
}

TEST(ZooTest, VitBaseParameterCount) {
  Graph g = BuildVitBase(1);
  // ~85M + patch embedding.
  EXPECT_NEAR(Params(g) / 1e6, 86.0, 4.0);
}

TEST(ZooTest, ResNet18ParameterCount) {
  Graph g = BuildResNet18(1);
  // ResNet-18 is ~11.7M; our 3x3 downsample substitution adds ~2M.
  EXPECT_NEAR(Params(g) / 1e6, 11.7, 3.5);
}

TEST(ZooTest, NerfParameterCount) {
  Graph g = BuildNerf(1);
  // Table 2: 24K parameters.
  EXPECT_NEAR(Params(g) / 1e3, 24.0, 6.0);
}

TEST(ZooTest, OptLayerScalesWithModelSize) {
  // Per-layer params: 12 h^2 (4 attention + 8 FFN); KV cache excluded.
  for (auto [build, hidden] :
       std::vector<std::pair<Graph (*)(std::int64_t), std::int64_t>>{
           {BuildOpt1p3b, 2048}, {BuildOpt6p7b, 4096}, {BuildOpt13b, 5120}}) {
    Graph g = build(1);
    double expected = 12.0 * static_cast<double>(hidden) * static_cast<double>(hidden);
    // Weights include the KV cache (2 * ctx * hidden params).
    double kv = 2.0 * 1024.0 * static_cast<double>(hidden);
    EXPECT_NEAR(Params(g), expected + kv, 0.02 * expected) << g.name();
  }
}

TEST(ZooTest, Llama2LayerHasGatedFfn) {
  Graph g = BuildLlama2_7b(1);
  // 4*4096^2 attention + 3*4096*11008 FFN + KV cache.
  double expected = 4.0 * 4096 * 4096 + 3.0 * 4096 * 11008 + 2.0 * 1024 * 4096;
  EXPECT_NEAR(Params(g), expected, 0.02 * expected);
}

TEST(ZooTest, RetNetLayerBuilds) {
  Graph g = BuildRetNet1p3b(4);
  EXPECT_GT(g.num_ops(), 10);
  // The recurrent state is persistent.
  EXPECT_TRUE(g.tensor("l0_state").is_weight);
}

TEST(ZooTest, BatchScalesActivationsNotWeights) {
  Graph b1 = BuildBertLarge(1, /*num_layers=*/2);
  Graph b4 = BuildBertLarge(4, /*num_layers=*/2);
  EXPECT_EQ(b1.WeightBytes(), b4.WeightBytes());
  EXPECT_GT(b4.TotalTensorBytes(), b1.TotalTensorBytes());
}

TEST(ZooTest, GraphsAreWellFormed) {
  for (const ModelInfo& info : EvaluationModels()) {
    Graph g = info.build(info.batch_sizes.front());
    EXPECT_GT(g.num_ops(), 0) << info.name;
    EXPECT_FALSE(g.OutputNames().empty()) << info.name;
    EXPECT_GT(g.WeightBytes(), 0) << info.name;
  }
  for (const ModelInfo& info : LlmModels()) {
    Graph g = info.build(1);
    EXPECT_GT(g.num_ops(), 0) << info.name;
    EXPECT_GT(g.WeightBytes(), 0) << info.name;
  }
}

TEST(ZooTest, ResNetConvChainsThroughHaloPadding) {
  Graph g = BuildResNet18(1);
  // The stem output is consumed with a 3x3 halo by the first block.
  const TensorInfo& stem = g.tensor("stem_a");
  EXPECT_TRUE(stem.halo_padded);
  EXPECT_EQ(stem.shape, (std::vector<std::int64_t>{1, 64, 58, 58}));
}

TEST(ZooTest, BertWeightsFitIpu) {
  // BERT-Large in FP16 must fit the 896 MB distributed memory (paper runs it
  // on one chip at small batch sizes).
  Graph g = BuildBertLarge(1);
  EXPECT_LT(g.WeightBytes(), 896LL * 1024 * 1024);
}

}  // namespace
}  // namespace t10
