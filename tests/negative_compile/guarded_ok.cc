// Positive control for the thread-safety negative-compile checks
// (tests/CMakeLists.txt): correct lock discipline over an annotated guarded
// field. Must build cleanly under Clang -Werror=thread-safety; if this file
// fails, the harness (not the analysis) is broken.

#include "src/util/sync.h"

namespace negative_compile {

class Guarded {
 public:
  void Set(int v) {
    t10::MutexLock lock(mu_);
    value_ = v;
  }

  int Get() {
    t10::MutexLock lock(mu_);
    return value_;
  }

 private:
  t10::Mutex mu_{"negative_compile.guarded_ok.mu"};
  int value_ T10_GUARDED_BY(mu_) = 0;
};

int Use() {
  Guarded guarded;
  guarded.Set(1);
  return guarded.Get();
}

}  // namespace negative_compile
