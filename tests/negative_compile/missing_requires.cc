// Must NOT compile under Clang -Werror=thread-safety: calls a T10_REQUIRES
// method without holding the required mutex. The configure-time check in
// tests/CMakeLists.txt fails the build if this file ever compiles.

#include "src/util/sync.h"

namespace negative_compile {

class Queue {
 public:
  void PushLocked() T10_REQUIRES(mu_) { ++depth_; }

  // error: calling function 'PushLocked' requires holding mutex 'mu_'.
  void Push() { PushLocked(); }

 private:
  t10::Mutex mu_{"negative_compile.requires.mu"};
  int depth_ T10_GUARDED_BY(mu_) = 0;
};

void Use() {
  Queue queue;
  queue.Push();
}

}  // namespace negative_compile
