// Must NOT compile under Clang -Werror=thread-safety: reads a
// T10_GUARDED_BY field without holding its mutex. The configure-time check
// in tests/CMakeLists.txt fails the build if this file ever compiles.

#include "src/util/sync.h"

namespace negative_compile {

class Guarded {
 public:
  // error: reading variable 'value_' requires holding mutex 'mu_'.
  int Get() { return value_; }

 private:
  t10::Mutex mu_{"negative_compile.unguarded.mu"};
  int value_ T10_GUARDED_BY(mu_) = 0;
};

int Use() {
  Guarded guarded;
  return guarded.Get();
}

}  // namespace negative_compile
