// End-to-end observability check: runs the real t10c binary with
// --demo --metrics --trace and validates both outputs — the metrics
// snapshot must contain compiler phase timings, search eval counts, cache
// hit/miss counts and per-core traffic totals; the trace must contain
// Perfetto "C" counter events alongside the "X" spans.
//
// The binary path is injected by CMake as T10_T10C_BIN.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace t10 {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.good()) << "cannot open " << path;
  std::ostringstream contents;
  contents << file.rdbuf();
  return contents.str();
}

class T10cObservability : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    metrics_path_ = new std::string(::testing::TempDir() + "/t10c_metrics.json");
    trace_path_ = new std::string(::testing::TempDir() + "/t10c_trace.json");
    const std::string command = std::string(T10_T10C_BIN) + " --demo --metrics " +
                                *metrics_path_ + " --trace " + *trace_path_ + " > /dev/null";
    exit_code_ = std::system(command.c_str());
  }

  static std::string* metrics_path_;
  static std::string* trace_path_;
  static int exit_code_;
};

std::string* T10cObservability::metrics_path_ = nullptr;
std::string* T10cObservability::trace_path_ = nullptr;
int T10cObservability::exit_code_ = -1;

TEST_F(T10cObservability, CompileSucceeds) { EXPECT_EQ(exit_code_, 0); }

TEST_F(T10cObservability, MetricsSnapshotHasCompilerPhaseTimings) {
  const std::string json = ReadFile(*metrics_path_);
  EXPECT_NE(json.find("compiler.phase.cost_model_fit.seconds"), std::string::npos);
  EXPECT_NE(json.find("compiler.phase.intra_search.seconds"), std::string::npos);
  EXPECT_NE(json.find("compiler.phase.enumeration.seconds"), std::string::npos);
  EXPECT_NE(json.find("compiler.phase.filtering.seconds"), std::string::npos);
  EXPECT_NE(json.find("compiler.phase.cost_eval.seconds"), std::string::npos);
  EXPECT_NE(json.find("compiler.phase.pareto.seconds"), std::string::npos);
  EXPECT_NE(json.find("compiler.phase.reconcile.seconds"), std::string::npos);
  EXPECT_NE(json.find("compiler.phase.total.seconds"), std::string::npos);
}

TEST_F(T10cObservability, MetricsSnapshotHasSearchAndCacheCounts) {
  const std::string json = ReadFile(*metrics_path_);
  EXPECT_NE(json.find("compiler.search.evaluations"), std::string::npos);
  EXPECT_NE(json.find("compiler.search.filtered_plans"), std::string::npos);
  EXPECT_NE(json.find("compiler.cache.hits"), std::string::npos);
  EXPECT_NE(json.find("compiler.cache.misses"), std::string::npos);
  // The demo MLP has three ops with distinct signatures: all misses.
  EXPECT_NE(json.find("\"compiler.cache.misses\": 3"), std::string::npos);
}

TEST_F(T10cObservability, MetricsSnapshotHasPerCoreTrafficTotals) {
  const std::string json = ReadFile(*metrics_path_);
  EXPECT_NE(json.find("compiler.model.traffic.shift_bytes_per_core"), std::string::npos);
  EXPECT_NE(json.find("compiler.model.traffic.setup_bytes_per_core"), std::string::npos);
  EXPECT_NE(json.find("compiler.model.traffic.transition_bytes_per_core"), std::string::npos);
}

TEST_F(T10cObservability, TraceContainsCounterEvents) {
  const std::string json = ReadFile(*trace_path_);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("memory bytes/core"), std::string::npos);
  EXPECT_NE(json.find("link bytes/core (cumulative)"), std::string::npos);
  EXPECT_NE(json.find("link utilisation"), std::string::npos);
}

TEST_F(T10cObservability, RejectsUnknownFlags) {
  const std::string command =
      std::string(T10_T10C_BIN) + " --demo --no-such-flag > /dev/null 2>&1";
  EXPECT_NE(std::system(command.c_str()), 0);
}

TEST_F(T10cObservability, RejectsCoresWithoutValue) {
  const std::string command = std::string(T10_T10C_BIN) + " --cores > /dev/null 2>&1";
  EXPECT_NE(std::system(command.c_str()), 0);
}

TEST_F(T10cObservability, HelpExitsZero) {
  const std::string command = std::string(T10_T10C_BIN) + " --help > /dev/null";
  EXPECT_EQ(std::system(command.c_str()), 0);
}

}  // namespace
}  // namespace t10
