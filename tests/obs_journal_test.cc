// EventJournal (flight-recorder ring) tests: ordering, wraparound eviction,
// concurrent writers, the null-safe Log helper, and the post-mortem JSON the
// server dumps on failover (the CI chaos job parses it with jq).

#include "src/obs/journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/span.h"

namespace t10 {
namespace obs {
namespace {

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(EventJournalTest, AppendsInOrderWithMetadata) {
  EventJournal journal(8);
  journal.Append(Severity::kInfo, "serve", "server.start", -1, 0);
  journal.Append(Severity::kWarn, "health", "health.probe", -1, -1, "1 failed core");
  journal.Append(Severity::kError, "exec", "exec.data_loss", 7, 1);

  const std::vector<Event> events = journal.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].event, "server.start");
  EXPECT_EQ(events[0].severity, Severity::kInfo);
  EXPECT_EQ(events[0].plan_epoch, 0);
  EXPECT_EQ(events[1].event, "health.probe");
  EXPECT_EQ(events[1].detail, "1 failed core");
  EXPECT_EQ(events[2].request_id, 7);
  EXPECT_EQ(events[2].plan_epoch, 1);
  // Sequence numbers ascend and timestamps are monotonic non-decreasing.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GT(events[i].seq, events[i - 1].seq);
    EXPECT_GE(events[i].time_seconds, events[i - 1].time_seconds);
  }
  EXPECT_EQ(journal.total_appended(), 3u);
}

TEST(EventJournalTest, RingWrapsKeepingTheNewestEvents) {
  EventJournal journal(8);
  for (int i = 0; i < 20; ++i) {
    journal.Append(Severity::kInfo, "test", "event." + std::to_string(i));
  }
  const std::vector<Event> events = journal.Snapshot();
  ASSERT_EQ(events.size(), 8u);  // Ring capacity, not total appended.
  EXPECT_EQ(journal.total_appended(), 20u);
  // The survivors are exactly the last 8, oldest first.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)].event, "event." + std::to_string(12 + i));
  }
}

TEST(EventJournalTest, ConcurrentWritersLoseNothingBeforeWrap) {
  // With capacity >= total appends, every event survives and seqs are unique.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100;
  EventJournal journal(kThreads * kPerThread);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&journal, t] {
      for (int i = 0; i < kPerThread; ++i) {
        journal.Append(Severity::kInfo, "t" + std::to_string(t), "e" + std::to_string(i), t, i);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const std::vector<Event> events = journal.Snapshot();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads * kPerThread));
  std::set<std::uint64_t> seqs;
  for (const Event& event : events) {
    EXPECT_TRUE(seqs.insert(event.seq).second) << "duplicate seq " << event.seq;
  }
}

TEST(EventJournalTest, ConcurrentWritersUnderWrapStayConsistent) {
  // Hammer a tiny ring from many threads: the snapshot must stay internally
  // consistent (sorted unique seqs, size <= capacity). TSan runs this too.
  EventJournal journal(16);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&journal] {
      for (int i = 0; i < kPerThread; ++i) {
        journal.Append(Severity::kWarn, "stress", "event", i);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const std::vector<Event> events = journal.Snapshot();
  EXPECT_LE(events.size(), 16u);
  EXPECT_GE(events.size(), 1u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GT(events[i].seq, events[i - 1].seq);
  }
  EXPECT_EQ(journal.total_appended(), static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(EventJournalTest, LogHelperIsNullSafe) {
  Log(nullptr, Severity::kError, "serve", "nothing");  // Must not crash.
  EventJournal journal(4);
  Log(&journal, Severity::kInfo, "serve", "something", 3, 1, "detail");
  const std::vector<Event> events = journal.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].event, "something");
  EXPECT_EQ(events[0].request_id, 3);
}

TEST(EventJournalTest, SeverityNames) {
  EXPECT_STREQ(SeverityName(Severity::kDebug), "debug");
  EXPECT_STREQ(SeverityName(Severity::kInfo), "info");
  EXPECT_STREQ(SeverityName(Severity::kWarn), "warn");
  EXPECT_STREQ(SeverityName(Severity::kError), "error");
}

TEST(PostMortemTest, JsonContainsEventsAndOpenSpans) {
  EventJournal journal(8);
  journal.Append(Severity::kWarn, "health", "health.probe", -1, -1, "new damage");
  journal.Append(Severity::kInfo, "serve", "failover.hot_swap", -1, 1);

  Tracer tracer;
  const TraceContext root = tracer.Root(42, "req:42");
  Span open = StartSpan(root, "execute");
  open.AddAttr("worker", "1");

  const std::string json = PostMortemJson("failover: hot-swapped epoch 1", &journal, &tracer);
  EXPECT_TRUE(Contains(json, "\"reason\""));
  EXPECT_TRUE(Contains(json, "failover: hot-swapped epoch 1"));
  EXPECT_TRUE(Contains(json, "\"events\""));
  EXPECT_TRUE(Contains(json, "health.probe"));
  EXPECT_TRUE(Contains(json, "failover.hot_swap"));
  EXPECT_TRUE(Contains(json, "new damage"));
  EXPECT_TRUE(Contains(json, "\"open_spans\""));
  EXPECT_TRUE(Contains(json, "\"execute\""));
  EXPECT_TRUE(Contains(json, "req:42"));
  EXPECT_TRUE(Contains(json, "\"worker\""));
  // The probe event precedes the hot swap in the serialized order.
  EXPECT_LT(json.find("health.probe"), json.find("failover.hot_swap"));
}

TEST(PostMortemTest, NullSourcesEmitEmptyLists) {
  const std::string json = PostMortemJson("reason", nullptr, nullptr);
  EXPECT_TRUE(Contains(json, "\"events\""));
  EXPECT_TRUE(Contains(json, "\"open_spans\""));
  EXPECT_TRUE(Contains(json, "\"reason\""));
}

TEST(PostMortemTest, DumpWritesFileAndRejectsBadPath) {
  EventJournal journal(4);
  journal.Append(Severity::kError, "serve", "failover.park_failed", -1, 2);
  const std::string path = ::testing::TempDir() + "/postmortem_test.json";
  ASSERT_TRUE(DumpPostMortem(path, "replan failed", &journal, nullptr).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_TRUE(Contains(buffer.str(), "failover.park_failed"));
  EXPECT_TRUE(Contains(buffer.str(), "replan failed"));
  std::remove(path.c_str());

  const Status bad = DumpPostMortem("/no/such/dir/postmortem.json", "r", &journal, nullptr);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace obs
}  // namespace t10
