#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <fstream>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "src/obs/json_writer.h"

namespace t10 {
namespace obs {
namespace {

TEST(CounterTest, IncrementAndAdd) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("test.counter");
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(CounterTest, ConcurrentIncrementsDoNotDropUpdates) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) {
        c.Increment();
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAndSetMax) {
  MetricsRegistry registry;
  Gauge& g = registry.GetGauge("test.gauge");
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.SetMax(1.0);  // Lower: ignored.
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.SetMax(7.0);  // Higher: taken.
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
  g.Set(-1.0);  // Plain Set always overwrites.
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(HistogramTest, TracksCountSumMinMaxMean) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("test.hist");
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  h.Record(2.0);
  h.Record(6.0);
  h.Record(1.0);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.sum(), 9.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 6.0);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(HistogramTest, BucketsAreCumulative) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("test.buckets");
  h.Record(5e-7);  // le 1e-6.
  h.Record(0.5);   // le 1.
  h.Record(3.0);   // le 10.
  // Find the bucket with upper bound 1e-6 and 1.
  for (int b = 0; b < Histogram::kNumBuckets; ++b) {
    const double le = Histogram::BucketUpperBound(b);
    if (le == 1e-6) {
      EXPECT_EQ(h.cumulative_count(b), 1);
    }
    if (le == 1.0) {
      EXPECT_EQ(h.cumulative_count(b), 2);
    }
  }
  EXPECT_EQ(h.cumulative_count(Histogram::kNumBuckets - 1), 3);
}

TEST(ScopedTimerTest, RecordsElapsedSeconds) {
  MetricsRegistry registry;
  {
    ScopedTimer timer("test.timer.seconds", registry);
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i) {
      sink = sink + 1.0;
    }
  }
  Histogram& h = registry.GetHistogram("test.timer.seconds");
  EXPECT_EQ(h.count(), 1);
  EXPECT_GT(h.sum(), 0.0);
  EXPECT_LT(h.sum(), 10.0);  // Sanity: the loop is far below ten seconds.
}

TEST(RegistryTest, HandlesAreStableAndFindOrCreate) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("same.name");
  Counter& b = registry.GetCounter("same.name");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(registry.num_instruments(), 1);
  registry.GetGauge("other.name");
  EXPECT_EQ(registry.num_instruments(), 2);
}

TEST(RegistryTest, ResetZeroesEverythingButKeepsHandles) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("r.counter");
  Gauge& g = registry.GetGauge("r.gauge");
  Histogram& h = registry.GetHistogram("r.hist");
  c.Add(5);
  g.Set(3.0);
  h.Record(1.0);
  registry.Reset();
  EXPECT_EQ(c.value(), 0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0);
}

// Structural JSON check without a parser: every brace/bracket balances and
// quotes pair up outside of escapes.
void ExpectBalancedJson(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        ++depth;
        break;
      case '}':
      case ']':
        --depth;
        EXPECT_GE(depth, 0);
        break;
      default:
        break;
    }
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth, 0);
}

TEST(RegistryTest, JsonSnapshotContainsEveryInstrument) {
  MetricsRegistry registry;
  registry.GetCounter("compiler.cache.hits").Add(3);
  registry.GetGauge("sim.machine.scratchpad_peak_bytes").Set(1024.0);
  registry.GetHistogram("compiler.phase.total.seconds").Record(0.25);
  const std::string json = registry.ToJson();
  ExpectBalancedJson(json);
  EXPECT_NE(json.find("\"compiler.cache.hits\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"sim.machine.scratchpad_peak_bytes\": 1024"), std::string::npos);
  EXPECT_NE(json.find("\"compiler.phase.total.seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"sum\": 0.25"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
}

TEST(RegistryTest, JsonSnapshotRoundTripsThroughFile) {
  MetricsRegistry registry;
  registry.GetCounter("a.counter").Add(7);
  registry.GetGauge("b.gauge").Set(1.5);
  const std::string path = ::testing::TempDir() + "/t10_metrics_test.json";
  registry.WriteFile(path);
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::ostringstream contents;
  contents << file.rdbuf();
  EXPECT_EQ(contents.str(), registry.ToJson());
}

TEST(RegistryTest, EmptyRegistrySnapshotIsValid) {
  MetricsRegistry registry;
  const std::string json = registry.ToJson();
  ExpectBalancedJson(json);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(JsonWriterTest, EscapesAndNesting) {
  JsonWriter w;
  w.BeginObject();
  w.Key("quote\"key");
  w.String("line\nbreak");
  w.Key("list");
  w.BeginArray();
  w.Int(1);
  w.Double(2.5);
  w.Bool(true);
  w.EndArray();
  w.EndObject();
  const std::string json = w.str();
  ExpectBalancedJson(json);
  EXPECT_NE(json.find("quote\\\"key"), std::string::npos);
  EXPECT_NE(json.find("line\\nbreak"), std::string::npos);
  EXPECT_NE(json.find("2.5"), std::string::npos);
  EXPECT_NE(json.find("true"), std::string::npos);
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(JsonNumber(1.0), "1");
}

TEST(HistogramTest, QuantileIsExactWhileUnderReservoirCapacity) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("test.quantile");
  for (int i = 1; i <= 100; ++i) {
    h.Record(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 100.0);
  EXPECT_NEAR(h.Quantile(0.50), 50.0, 1.0);
  EXPECT_NEAR(h.Quantile(0.95), 95.0, 1.0);
  EXPECT_NEAR(h.Quantile(0.99), 99.0, 1.0);
}

TEST(HistogramTest, QuantileOfEmptyHistogramIsZero) {
  MetricsRegistry registry;
  EXPECT_DOUBLE_EQ(registry.GetHistogram("test.empty").Quantile(0.5), 0.0);
}

TEST(HistogramTest, QuantileEstimatesAndStaysDeterministicBeyondCapacity) {
  // Past the reservoir bound the quantile becomes a sampled estimate; for a
  // uniform stream it must stay near the true value, and identical record
  // orders must produce identical snapshots (deterministic LCG).
  MetricsRegistry registry;
  Histogram& a = registry.GetHistogram("test.reservoir.a");
  Histogram& b = registry.GetHistogram("test.reservoir.b");
  const int n = Histogram::kReservoirCapacity * 4;
  for (int i = 0; i < n; ++i) {
    a.Record(static_cast<double>(i));
    b.Record(static_cast<double>(i));
  }
  const double p50 = a.Quantile(0.50);
  EXPECT_GT(p50, static_cast<double>(n) * 0.35);
  EXPECT_LT(p50, static_cast<double>(n) * 0.65);
  const double p99 = a.Quantile(0.99);
  EXPECT_GT(p99, static_cast<double>(n) * 0.90);
  EXPECT_DOUBLE_EQ(a.Quantile(0.50), b.Quantile(0.50));
  EXPECT_DOUBLE_EQ(a.Quantile(0.99), b.Quantile(0.99));
}

TEST(HistogramTest, ResetClearsTheReservoir) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("test.reset");
  for (int i = 0; i < 10; ++i) {
    h.Record(5.0);
  }
  h.Reset();
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  h.Record(2.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 2.0);
}

TEST(RegistryTest, JsonSnapshotIncludesPercentiles) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("test.latency.seconds");
  for (int i = 1; i <= 100; ++i) {
    h.Record(static_cast<double>(i) * 0.001);
  }
  const std::string json = registry.ToJson();
  ExpectBalancedJson(json);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(GlobalRegistryTest, IsASingleton) {
  MetricsRegistry& a = MetricsRegistry::Global();
  MetricsRegistry& b = MetricsRegistry::Global();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace obs
}  // namespace t10
