// Tracer/Span contract tests: RAII lifecycle, parent/child nesting, timing
// monotonicity, cross-thread context propagation (the serving and compiler
// fan-out pattern), flow linkage, the zero-cost inactive path, and the
// Perfetto export schema AppendTracer produces (the CI chaos job parses it
// with jq, so the shape is load-bearing).

#include "src/obs/span.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/sim/trace.h"
#include "src/util/thread_pool.h"

namespace t10 {
namespace obs {
namespace {

const SpanRecord* FindSpan(const std::vector<SpanRecord>& spans, const std::string& name) {
  for (const SpanRecord& span : spans) {
    if (span.name == name) {
      return &span;
    }
  }
  return nullptr;
}

TEST(SpanTest, RootAndNestedChildrenRecordParentIds) {
  Tracer tracer;
  const TraceContext root = tracer.Root(7, "req:7");
  EXPECT_EQ(root.trace_id, 7u);
  EXPECT_EQ(root.parent_span, 0u);
  EXPECT_TRUE(root.active());

  std::uint64_t outer_id = 0;
  {
    Span outer = StartSpan(root, "outer");
    ASSERT_TRUE(outer.active());
    outer_id = outer.context().parent_span;  // Children parent to `outer`.
    Span inner = StartSpan(outer.context(), "inner");
    ASSERT_TRUE(inner.active());
    EXPECT_EQ(inner.context().trace_id, 7u);
  }
  const std::vector<SpanRecord> spans = tracer.FinishedSpans();
  ASSERT_EQ(spans.size(), 2u);
  const SpanRecord* outer = FindSpan(spans, "outer");
  const SpanRecord* inner = FindSpan(spans, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->parent_id, 0u);
  EXPECT_EQ(outer->span_id, outer_id);
  EXPECT_EQ(inner->parent_id, outer->span_id);
  EXPECT_EQ(outer->trace_id, 7u);
  EXPECT_EQ(inner->trace_id, 7u);
  EXPECT_EQ(outer->track, "req:7");
  EXPECT_EQ(inner->track, "req:7");
  EXPECT_EQ(tracer.num_open(), 0);
}

TEST(SpanTest, TimingIsMonotonicAndNested) {
  Tracer tracer;
  const TraceContext root = tracer.Root(1, "t");
  {
    Span outer = StartSpan(root, "outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    {
      Span inner = StartSpan(outer.context(), "inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const std::vector<SpanRecord> spans = tracer.FinishedSpans();
  const SpanRecord* outer = FindSpan(spans, "outer");
  const SpanRecord* inner = FindSpan(spans, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_GE(outer->start_seconds, 0.0);
  EXPECT_GT(outer->duration_seconds, 0.0);
  EXPECT_GT(inner->duration_seconds, 0.0);
  // The child starts at or after its parent and ends at or before it.
  EXPECT_GE(inner->start_seconds, outer->start_seconds);
  EXPECT_LE(inner->start_seconds + inner->duration_seconds,
            outer->start_seconds + outer->duration_seconds + 1e-9);
  // FinishedSpans sorts by start time.
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_GE(spans[i].start_seconds, spans[i - 1].start_seconds);
  }
}

TEST(SpanTest, InactiveContextProducesInertSpans) {
  const TraceContext inactive;  // Null tracer.
  EXPECT_FALSE(inactive.active());
  Span span = StartSpan(inactive, "nothing");
  EXPECT_FALSE(span.active());
  span.AddAttr("key", "value");  // All no-ops.
  span.SetFlowOut(9);
  span.SetFlowIn(9);
  EXPECT_FALSE(span.context().active());
  span.End();
  // A child of an inert span is also inert.
  Span child = StartSpan(span.context(), "child");
  EXPECT_FALSE(child.active());
}

TEST(SpanTest, EndIsIdempotentAndMoveTransfersOwnership) {
  Tracer tracer;
  const TraceContext root = tracer.Root(1, "t");
  Span a = StartSpan(root, "a");
  a.End();
  a.End();  // Second End is a no-op, not a double-finish.
  EXPECT_EQ(tracer.num_finished(), 1);

  Span b = StartSpan(root, "b");
  Span moved = std::move(b);
  EXPECT_TRUE(moved.active());
  EXPECT_FALSE(b.active());  // NOLINT(bugprone-use-after-move)
  b.End();                   // Ending the moved-from shell does nothing.
  EXPECT_EQ(tracer.num_finished(), 1);
  moved.End();
  EXPECT_EQ(tracer.num_finished(), 2);

  // Move-assigning over an open span ends the target first.
  Span c = StartSpan(root, "c");
  Span d = StartSpan(root, "d");
  c = std::move(d);
  EXPECT_EQ(tracer.num_finished(), 3);  // "c" ended by the assignment.
  c.End();
  EXPECT_EQ(tracer.num_finished(), 4);
}

TEST(SpanTest, AttrsAndFlowsLandOnTheRecord) {
  Tracer tracer;
  const TraceContext root = tracer.Root(3, "req:3");
  {
    Span span = StartSpan(root, "execute");
    span.AddAttr("worker", "1");
    span.AddAttr("status", "OK");
    span.SetFlowOut(48);
    span.SetFlowIn(47);
  }
  const std::vector<SpanRecord> spans = tracer.FinishedSpans();
  ASSERT_EQ(spans.size(), 1u);
  ASSERT_EQ(spans[0].attrs.size(), 2u);
  EXPECT_EQ(spans[0].attrs[0].key, "worker");
  EXPECT_EQ(spans[0].attrs[0].value, "1");
  EXPECT_EQ(spans[0].attrs[1].key, "status");
  EXPECT_EQ(spans[0].flow_out, 48u);
  EXPECT_EQ(spans[0].flow_in, 47u);
}

TEST(SpanTest, AddCompletedRecordsInterval) {
  Tracer tracer;
  const TraceContext root = tracer.Root(5, "req:5");
  const auto start = std::chrono::steady_clock::now();
  const auto end = start + std::chrono::milliseconds(10);
  const std::uint64_t id =
      tracer.AddCompleted(root, "queue.wait", start, end, {{"requeues", "0"}},
                          /*flow_out=*/0, /*flow_in=*/21);
  EXPECT_NE(id, 0u);
  const std::vector<SpanRecord> spans = tracer.FinishedSpans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "queue.wait");
  EXPECT_NEAR(spans[0].duration_seconds, 0.010, 1e-3);
  EXPECT_EQ(spans[0].flow_in, 21u);
  ASSERT_EQ(spans[0].attrs.size(), 1u);
  EXPECT_EQ(spans[0].attrs[0].key, "requeues");
}

TEST(SpanTest, CrossThreadPropagationUnderThreadPool) {
  // The compiler's fan-out pattern: a context captured by value parents every
  // task span correctly no matter which pool thread runs it.
  Tracer tracer;
  const TraceContext root = tracer.Root(11, "compile");
  constexpr std::int64_t kTasks = 32;
  {
    Span parent = StartSpan(root, "intra_op_search");
    const TraceContext ctx = parent.context();
    ThreadPool pool(4);
    pool.ParallelFor(kTasks, [&ctx](std::int64_t i) {
      Span task = StartSpan(ctx.WithTrack("compile.search.op" + std::to_string(i)), "search");
      task.AddAttr("task", std::to_string(i));
    });
  }
  const std::vector<SpanRecord> spans = tracer.FinishedSpans();
  ASSERT_EQ(spans.size(), static_cast<std::size_t>(kTasks + 1));
  const SpanRecord* parent = FindSpan(spans, "intra_op_search");
  ASSERT_NE(parent, nullptr);
  std::set<std::string> tracks;
  for (const SpanRecord& span : spans) {
    if (span.name != "search") {
      continue;
    }
    EXPECT_EQ(span.parent_id, parent->span_id);
    EXPECT_EQ(span.trace_id, 11u);
    tracks.insert(span.track);
  }
  EXPECT_EQ(tracks.size(), static_cast<std::size_t>(kTasks));  // Per-op lanes.
  EXPECT_EQ(tracer.num_open(), 0);
}

TEST(SpanTest, ConcurrentSpansFromManyThreadsAllFinish) {
  Tracer tracer;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      const TraceContext root =
          tracer.Root(static_cast<std::uint64_t>(t), "req:" + std::to_string(t));
      for (int i = 0; i < kPerThread; ++i) {
        Span span = StartSpan(root, "work");
        span.AddAttr("i", std::to_string(i));
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(tracer.num_finished(), kThreads * kPerThread);
  EXPECT_EQ(tracer.num_open(), 0);
  // Span ids are unique.
  std::set<std::uint64_t> ids;
  for (const SpanRecord& span : tracer.FinishedSpans()) {
    EXPECT_TRUE(ids.insert(span.span_id).second);
  }
}

TEST(SpanTest, OpenSpansSnapshotReportsElapsedTime) {
  Tracer tracer;
  const TraceContext root = tracer.Root(2, "req:2");
  Span open = StartSpan(root, "in-flight");
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const std::vector<SpanRecord> snapshot = tracer.OpenSpans();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].name, "in-flight");
  EXPECT_GT(snapshot[0].duration_seconds, 0.0);
  EXPECT_EQ(tracer.num_open(), 1);
  open.End();
  EXPECT_EQ(tracer.num_open(), 0);
}

TEST(SpanTest, CounterSamplesAreRecorded) {
  Tracer tracer;
  tracer.CounterSample("serve.queue.depth", 3.0);
  tracer.CounterSample("serve.queue.depth", 5.0);
  const std::vector<CounterSample> samples = tracer.CounterSamples();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].track, "serve.queue.depth");
  EXPECT_DOUBLE_EQ(samples[1].value, 5.0);
  EXPECT_GE(samples[1].time_seconds, samples[0].time_seconds);
}

// -- Perfetto export schema ------------------------------------------------

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(SpanExportTest, AppendTracerEmitsSlicesArgsAndFlows) {
  Tracer tracer;
  const TraceContext root = tracer.Root(9, "req:9");
  {
    Span execute = StartSpan(root, "execute");
    execute.AddAttr("worker", "0");
    execute.SetFlowOut(144);
  }
  {
    Span wait = StartSpan(root, "queue.wait");
    wait.SetFlowIn(144);
  }
  Span open = StartSpan(root, "still-open");
  tracer.CounterSample("serve.inflight", 1.0);

  TraceWriter writer;
  AppendTracer(tracer, writer);
  const std::string json = writer.ToJson();

  // Slices with args on the span's track.
  EXPECT_TRUE(Contains(json, "\"name\": \"execute\""));
  EXPECT_TRUE(Contains(json, "\"ph\": \"X\""));
  EXPECT_TRUE(Contains(json, "\"worker\": \"0\""));
  // Flow arrow: one "s" and one "f" with the same id, the "f" end binding
  // to its enclosing slice ("bp": "e").
  EXPECT_TRUE(Contains(json, "\"ph\": \"s\""));
  EXPECT_TRUE(Contains(json, "\"ph\": \"f\""));
  EXPECT_TRUE(Contains(json, "\"bp\": \"e\""));
  EXPECT_TRUE(Contains(json, "\"id\": 144"));
  // Open spans export flagged as open.
  EXPECT_TRUE(Contains(json, "\"name\": \"still-open\""));
  EXPECT_TRUE(Contains(json, "\"open\": \"true\""));
  // Counter samples ride along as "C" events.
  EXPECT_TRUE(Contains(json, "\"ph\": \"C\""));
  EXPECT_TRUE(Contains(json, "serve.inflight"));
  // Lane metadata names the track.
  EXPECT_TRUE(Contains(json, "thread_name"));
  EXPECT_TRUE(Contains(json, "req:9"));
}

TEST(SpanExportTest, ExportedJsonParsesAsTraceEventArray) {
  // Minimal structural check without a JSON library: balanced brackets and
  // the envelope Perfetto expects (a top-level array of objects).
  Tracer tracer;
  const TraceContext root = tracer.Root(1, "lane");
  { Span s = StartSpan(root, "a"); }
  TraceWriter writer;
  AppendTracer(tracer, writer);
  const std::string json = writer.ToJson();
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');  // Trailing newline after the array.
  std::int64_t depth = 0;
  std::int64_t braces = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '[') {
      ++depth;
    } else if (c == ']') {
      --depth;
    } else if (c == '{') {
      ++braces;
    } else if (c == '}') {
      --braces;
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(braces, 0);
}

}  // namespace
}  // namespace obs
}  // namespace t10
