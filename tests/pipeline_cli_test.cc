// CLI contract of the pipeline flags: strict --jobs / --plan-cache parsing
// (exit 2 on bad values), --print-passes listing, and the cold/warm plan
// cache observably skipping the search via --metrics. The binary path is
// injected by CMake as T10_T10C_BIN.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

namespace t10 {
namespace {

namespace fs = std::filesystem;

int RunT10c(const std::string& args) {
  const std::string command = std::string(T10_T10C_BIN) + " " + args;
  const int status = std::system(command.c_str());
  return WEXITSTATUS(status);
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(PipelineCliTest, BadJobsValuesAreFlagErrors) {
  EXPECT_EQ(RunT10c("--demo --jobs=abc > /dev/null 2>&1"), 2);
  EXPECT_EQ(RunT10c("--demo --jobs=0 > /dev/null 2>&1"), 2);
  EXPECT_EQ(RunT10c("--demo --jobs=-1 > /dev/null 2>&1"), 2);
  EXPECT_EQ(RunT10c("--demo --jobs=4x > /dev/null 2>&1"), 2);
  EXPECT_EQ(RunT10c("--demo --jobs= > /dev/null 2>&1"), 2);
  EXPECT_EQ(RunT10c("--demo --jobs > /dev/null 2>&1"), 2);  // Missing value.
}

TEST(PipelineCliTest, ExplicitJobsCompilesTheDemo) {
  EXPECT_EQ(RunT10c("--demo --jobs=2 > /dev/null 2>&1"), 0);
  EXPECT_EQ(RunT10c("--demo --jobs 1 > /dev/null 2>&1"), 0);
}

TEST(PipelineCliTest, EmptyPlanCacheDirIsFlagError) {
  EXPECT_EQ(RunT10c("--demo --plan-cache= > /dev/null 2>&1"), 2);
  EXPECT_EQ(RunT10c("--demo --plan-cache > /dev/null 2>&1"), 2);
}

TEST(PipelineCliTest, UncreatablePlanCacheDirIsFlagError) {
  // /dev/null exists as a file, so a directory cannot be created beneath it.
  EXPECT_EQ(RunT10c("--demo --plan-cache=/dev/null/cache > /dev/null 2>&1"), 2);
}

TEST(PipelineCliTest, PrintPassesListsThePipelineInOrder) {
  const std::string out_path = ::testing::TempDir() + "/t10c_passes.txt";
  ASSERT_EQ(RunT10c("--print-passes > " + out_path + " 2>/dev/null"), 0);
  const std::string out = ReadFileOrEmpty(out_path);
  const std::size_t fit = out.find("fit_cost_model");
  const std::size_t search = out.find("intra_op_search");
  const std::size_t reconcile = out.find("inter_op_reconcile");
  const std::size_t memory = out.find("memory_plan");
  const std::size_t finalize = out.find("finalize");
  ASSERT_NE(fit, std::string::npos) << out;
  ASSERT_NE(finalize, std::string::npos) << out;
  EXPECT_LT(fit, search);
  EXPECT_LT(search, reconcile);
  EXPECT_LT(reconcile, memory);
  EXPECT_LT(memory, finalize);
}

TEST(PipelineCliTest, HelpMentionsTheNewFlags) {
  const std::string out_path = ::testing::TempDir() + "/t10c_help.txt";
  RunT10c("--help > " + out_path + " 2>&1");
  const std::string out = ReadFileOrEmpty(out_path);
  EXPECT_NE(out.find("--jobs"), std::string::npos);
  EXPECT_NE(out.find("--plan-cache"), std::string::npos);
  EXPECT_NE(out.find("--print-passes"), std::string::npos);
}

TEST(PipelineCliTest, WarmPlanCacheSkipsTheSearch) {
  const fs::path cache_dir =
      fs::path(::testing::TempDir()) / "t10c_warm_cache_test";
  fs::remove_all(cache_dir);
  const std::string metrics1 = ::testing::TempDir() + "/t10c_cold_metrics.json";
  const std::string metrics2 = ::testing::TempDir() + "/t10c_warm_metrics.json";

  ASSERT_EQ(RunT10c("--demo --plan-cache=" + cache_dir.string() + " --metrics " +
                    metrics1 + " > /dev/null 2>&1"),
            0);
  const std::string cold = ReadFileOrEmpty(metrics1);
  // The cold compile searches the demo's three distinct signatures.
  EXPECT_EQ(cold.find("\"compiler.search.searches\": 0"), std::string::npos)
      << cold;
  EXPECT_NE(cold.find("\"compiler.cache.misses\": 3"), std::string::npos) << cold;

  ASSERT_EQ(RunT10c("--demo --plan-cache=" + cache_dir.string() + " --metrics " +
                    metrics2 + " > /dev/null 2>&1"),
            0);
  const std::string warm = ReadFileOrEmpty(metrics2);
  // The warm compile rebuilds every plan from the persisted cache: the search
  // funnel reports zero fresh searches and zero misses.
  EXPECT_NE(warm.find("\"compiler.search.searches\": 0"), std::string::npos)
      << warm;
  EXPECT_NE(warm.find("\"compiler.cache.misses\": 0"), std::string::npos) << warm;
  fs::remove_all(cache_dir);
}

}  // namespace
}  // namespace t10
