// End-to-end contract of the t10-serve binary: a fault-free run serves every
// request bit-identically and exits 0; a chaos core kill mid-run forces
// exactly one online failover with zero lost or duplicated responses; the
// metrics snapshot records the failover. The binary path is injected by
// CMake as T10_T10_SERVE_BIN.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

namespace t10 {
namespace {

int RunT10Serve(const std::string& args) {
  const std::string command = std::string(T10_T10_SERVE_BIN) + " " + args;
  const int status = std::system(command.c_str());
  return WEXITSTATUS(status);
}

std::string ReadFile(const std::string& path) {
  std::string contents;
  std::FILE* file = std::fopen(path.c_str(), "r");
  EXPECT_NE(file, nullptr) << path;
  if (file == nullptr) {
    return contents;
  }
  char buffer[4096];
  std::size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(file);
  return contents;
}

TEST(ServeCliTest, FaultFreeRunServesEverythingAndExitsZero) {
  const std::string out_path = ::testing::TempDir() + "/t10_serve_ok.txt";
  ASSERT_EQ(RunT10Serve("--requests 12 --cores 8 > " + out_path + " 2>/dev/null"), 0);
  const std::string output = ReadFile(out_path);
  EXPECT_NE(output.find("lost=0 duplicated=0"), std::string::npos) << output;
  EXPECT_NE(output.find("not_identical=0"), std::string::npos) << output;
  EXPECT_NE(output.find("failovers: 0"), std::string::npos) << output;
  EXPECT_NE(output.find("t10_serve: OK"), std::string::npos) << output;
}

TEST(ServeCliTest, TransientCorruptionIsAbsorbedBitIdentically) {
  const std::string out_path = ::testing::TempDir() + "/t10_serve_corrupt.txt";
  ASSERT_EQ(RunT10Serve("--requests 12 --cores 8 --faults corrupt=0.01,seed=7 > " + out_path +
                        " 2>/dev/null"),
            0);
  const std::string output = ReadFile(out_path);
  EXPECT_NE(output.find("lost=0 duplicated=0"), std::string::npos) << output;
  EXPECT_NE(output.find("not_identical=0"), std::string::npos) << output;
  EXPECT_NE(output.find("t10_serve: OK"), std::string::npos) << output;
}

TEST(ServeCliTest, ChaosCoreKillFailsOverOnceWithNoLostResponses) {
  const std::string out_path = ::testing::TempDir() + "/t10_serve_chaos.txt";
  const std::string metrics_path = ::testing::TempDir() + "/t10_serve_chaos_metrics.json";
  // Pace submissions so the kill lands while the server is live mid-run, and
  // leave enough requests after it to be served on the degraded plan.
  ASSERT_EQ(RunT10Serve("--requests 24 --qps 400 --cores 8 --chaos-kill-core-at 8 "
                        "--seed 3 --metrics " +
                        metrics_path + " > " + out_path + " 2>/dev/null"),
            0);
  const std::string output = ReadFile(out_path);
  EXPECT_NE(output.find("chaos: killing core 7"), std::string::npos) << output;
  EXPECT_NE(output.find("failovers: 1 (final epoch 1)"), std::string::npos) << output;
  EXPECT_NE(output.find("lost=0 duplicated=0"), std::string::npos) << output;
  EXPECT_NE(output.find("not_identical=0"), std::string::npos) << output;
  EXPECT_NE(output.find("t10_serve: OK"), std::string::npos) << output;

  // The metrics snapshot is the observable the CI chaos job greps for.
  const std::string metrics = ReadFile(metrics_path);
  EXPECT_NE(metrics.find("\"serve.failover.count\": 1"), std::string::npos) << metrics;
  EXPECT_EQ(metrics.find("\"serve.failover.failed\""), std::string::npos) << metrics;
}

TEST(ServeCliTest, DeadlinesShedOrExpireWithoutIntegrityFailure) {
  // A 1 ms deadline at full submission speed forces queue-time expiries; the
  // audit still requires exactly one response per accepted request.
  const std::string out_path = ::testing::TempDir() + "/t10_serve_deadline.txt";
  ASSERT_EQ(RunT10Serve("--requests 16 --cores 8 --workers 1 --deadline-ms 1 > " + out_path +
                        " 2>/dev/null"),
            0);
  const std::string output = ReadFile(out_path);
  EXPECT_NE(output.find("lost=0 duplicated=0"), std::string::npos) << output;
  EXPECT_NE(output.find("t10_serve: OK"), std::string::npos) << output;
}

TEST(ServeCliTest, PipelineRunChainsEveryStageWithCleanAudit) {
  const std::string out_path = ::testing::TempDir() + "/t10_serve_pipe.txt";
  ASSERT_EQ(RunT10Serve("--requests 12 --cores 8 --shards 4 --shard-mode pipeline > " +
                        out_path + " 2>/dev/null"),
            0);
  const std::string output = ReadFile(out_path);
  EXPECT_NE(output.find("4 pipeline stage(s)"), std::string::npos) << output;
  // 12 chains x 3 cuts: every request crossed every stage boundary once.
  EXPECT_NE(output.find("handoffs=36"), std::string::npos) << output;
  EXPECT_NE(output.find("lost=0 duplicated=0"), std::string::npos) << output;
  EXPECT_NE(output.find("not_identical=0"), std::string::npos) << output;
  EXPECT_NE(output.find("t10_serve: OK"), std::string::npos) << output;
}

TEST(ServeCliTest, PipelineCoreKillReplansOnlyTheDeadStage) {
  // Satellite: kill a core on mid-chain stage 1. Exactly that stage replans
  // (epoch 1, rejoining), every other stage stays at epoch 0, and the
  // exactly-once audit stays clean.
  const std::string out_path = ::testing::TempDir() + "/t10_serve_pipe_chaos.txt";
  ASSERT_EQ(RunT10Serve("--requests 24 --cores 8 --shards 4 --shard-mode pipeline "
                        "--deadline-ms 2000 --chaos-kill-core-at 6 --chaos-chip 1 > " +
                        out_path + " 2>/dev/null"),
            0);
  const std::string output = ReadFile(out_path);
  EXPECT_NE(output.find("stage 1"), std::string::npos) << output;
  EXPECT_NE(output.find("epoch 1"), std::string::npos) << output;
  // Only stage 1 bumped: the other three report epoch 0.
  int epoch0_stages = 0;
  for (std::string::size_type at = output.find("epoch 0"); at != std::string::npos;
       at = output.find("epoch 0", at + 1)) {
    ++epoch0_stages;
  }
  EXPECT_EQ(epoch0_stages, 3) << output;
  EXPECT_NE(output.find("lost=0 duplicated=0"), std::string::npos) << output;
  EXPECT_NE(output.find("not_identical=0"), std::string::npos) << output;
  EXPECT_NE(output.find("t10_serve: OK"), std::string::npos) << output;
}

}  // namespace
}  // namespace t10
