// Elastic pipeline recovery (src/serve/router + RepartitionDegraded):
// losing a stage's chip with recover_on_chip_loss set drains the pipeline,
// repartitions the model over the surviving chips, verifier-gates the cut
// and hot-swaps the stage chain under a new cluster epoch — in-flight
// chains park and resume at their exact operator, nothing is lost or
// duplicated, and post-recovery responses stay bit-identical. When no
// feasible repartition exists the router browns out (new admissions refuse
// kUnavailable) while still answering everything in flight.

#include "src/serve/router.h"

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/ir/builder.h"
#include "src/obs/journal.h"

namespace t10 {
namespace serve {
namespace {

Graph PipelineModel() {
  Graph g("recover-pipe");
  g.Add(MatMulOp("fc1", 16, 32, 32, DataType::kF32, "x", "w1", "h1"));
  g.Add(ElementwiseOp("relu", {16, 32}, DataType::kF32, "h1", "h2"));
  g.Add(MatMulOp("fc2", 16, 32, 32, DataType::kF32, "h2", "w2", "h3"));
  g.Add(MatMulOp("fc3", 16, 32, 16, DataType::kF32, "h3", "w3", "y"));
  g.MarkWeight("w1");
  g.MarkWeight("w2");
  g.MarkWeight("w3");
  return g;
}

RouterOptions RecoveryOptions() {
  RouterOptions options;
  options.shard.num_workers = 2;
  options.shard.health_poll_seconds = 0.002;
  options.shard.retry_backoff_base_seconds = 0.0;
  options.poll_seconds = 0.002;
  options.recover_on_chip_loss = true;
  return options;
}

template <typename Predicate>
bool WaitFor(Predicate predicate, double timeout_seconds = 20.0) {
  const auto deadline = Clock::now() + std::chrono::duration<double>(timeout_seconds);
  while (!predicate()) {
    if (Clock::now() >= deadline) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

std::map<std::int64_t, Response> AuditExactlyOnce(
    const std::set<std::int64_t>& accepted, std::vector<Response> responses) {
  std::map<std::int64_t, Response> by_id;
  for (Response& response : responses) {
    EXPECT_TRUE(accepted.count(response.id)) << "unknown response id " << response.id;
    EXPECT_FALSE(by_id.count(response.id)) << "duplicated response id " << response.id;
    by_id.emplace(response.id, std::move(response));
  }
  for (const std::int64_t id : accepted) {
    EXPECT_TRUE(by_id.count(id)) << "lost response for id " << id;
  }
  return by_id;
}

int CountEvents(const obs::EventJournal& journal, const std::string& name) {
  int count = 0;
  for (const obs::Event& event : journal.Snapshot()) {
    if (event.event == name) {
      ++count;
    }
  }
  return count;
}

// The tentpole scenario: a 3-stage pipeline loses its middle chip mid-
// traffic and recovers without intervention — exactly one cluster
// repartition, every chain answered OK and bit-identical, and the dead
// chip's simulated storage released.
TEST(RouterRecoveryTest, ChipLossRepartitionsAndKeepsServing) {
  const Graph graph = PipelineModel();
  obs::EventJournal journal;
  RouterOptions options = RecoveryOptions();
  options.journal = &journal;
  // Stage servers journal too: server.storage_released below comes from the
  // retired dead-chip server, not the router.
  options.shard.journal = &journal;
  Router router(ClusterSpec::Homogeneous(ChipSpec::ScaledIpu(8), 3), graph, options);
  ASSERT_TRUE(router.Start().ok());
  ASSERT_EQ(router.num_shards(), 3);

  std::set<std::int64_t> accepted;
  auto submit_batch = [&](int count, int base) {
    for (int i = 0; i < count; ++i) {
      Request request;
      request.op_slot = 0;
      request.input_seed = static_cast<std::uint64_t>(base + i);
      request.max_retries = 4;
      StatusOr<std::int64_t> id = router.Submit(request);
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      accepted.insert(*id);
    }
  };

  submit_batch(8, 0);
  router.KillChip(1);
  ASSERT_TRUE(WaitFor([&] {
    const RouterStats stats = router.stats();
    return stats.recoveries >= 1 || stats.recovery_failures >= 1;
  })) << "cluster recovery never ran";
  submit_batch(8, 8);
  router.WaitIdle();

  const std::map<std::int64_t, Response> by_id =
      AuditExactlyOnce(accepted, router.TakeResponses());
  for (const auto& [id, response] : by_id) {
    EXPECT_TRUE(response.status.ok()) << "id " << id << ": " << response.status.ToString();
    // Post-recovery execution runs the same operators on the same inputs:
    // the audit bit must hold across the repartition.
    EXPECT_TRUE(response.bit_identical) << "id " << id;
  }

  const RouterStats stats = router.stats();
  EXPECT_EQ(stats.recoveries, 1);
  EXPECT_EQ(stats.recovery_failures, 0);
  EXPECT_EQ(stats.cluster_epoch, 1);
  EXPECT_EQ(stats.shard_downs, 1);
  // The 4-op model re-cut over the 2 survivors: a shorter chain, every
  // stage routable again.
  EXPECT_EQ(router.num_shards(), 2);
  EXPECT_EQ(router.routable_shards(), 2);

  EXPECT_EQ(CountEvents(journal, "router.cluster.repartition"), 1);
  EXPECT_EQ(CountEvents(journal, "router.cluster.hot_swap"), 1);
  EXPECT_GE(CountEvents(journal, "router.cluster.drain"), 1);
  // Retiring the dead chip's server frees its simulated scratchpads.
  EXPECT_GE(CountEvents(journal, "server.storage_released"), 1);
  EXPECT_TRUE(router.Shutdown().ok());
}

// Losing the only chip leaves no survivor to repartition onto: the router
// must brown out — recovery marked failed, new admissions refused with
// kUnavailable — while every already-accepted chain is still answered.
TEST(RouterRecoveryTest, InfeasibleRepartitionBrownsOutWithoutCrashing) {
  const Graph graph = PipelineModel();
  obs::EventJournal journal;
  RouterOptions options = RecoveryOptions();
  options.journal = &journal;
  Router router(ClusterSpec::Homogeneous(ChipSpec::ScaledIpu(8), 1), graph, options);
  ASSERT_TRUE(router.Start().ok());
  ASSERT_EQ(router.num_shards(), 1);

  std::set<std::int64_t> accepted;
  for (int i = 0; i < 4; ++i) {
    Request request;
    request.op_slot = 0;
    request.input_seed = static_cast<std::uint64_t>(i);
    StatusOr<std::int64_t> id = router.Submit(request);
    if (id.ok()) {
      accepted.insert(*id);
    }
  }
  router.KillChip(0);
  ASSERT_TRUE(WaitFor([&] { return router.stats().recovery_failures >= 1; }))
      << "infeasible repartition never surfaced";

  Request refused;
  refused.op_slot = 0;
  const StatusOr<std::int64_t> rejected = router.Submit(refused);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);

  router.WaitIdle();
  const std::map<std::int64_t, Response> by_id =
      AuditExactlyOnce(accepted, router.TakeResponses());
  for (const auto& [id, response] : by_id) {
    // Chains still in flight at the kill drain through the dead stage with
    // an error; chains that beat it finish OK — either way, answered
    // exactly once (the audit above), never dropped.
    if (response.status.ok()) {
      EXPECT_TRUE(response.bit_identical) << "id " << id;
    }
  }

  const RouterStats stats = router.stats();
  EXPECT_EQ(stats.recoveries, 0);
  EXPECT_EQ(stats.recovery_failures, 1);
  EXPECT_EQ(stats.cluster_epoch, 0);
  EXPECT_EQ(CountEvents(journal, "router.cluster.park_failed"), 1);
  // The dead stage stays in the chain after a failed recovery, so shutdown
  // reports its loss; what matters here is that it returns at all.
  const Status stopped = router.Shutdown();
  (void)stopped;
}

// A second loss after a successful recovery folds into a second recovery:
// the epoch keeps advancing one repartition at a time.
TEST(RouterRecoveryTest, SecondChipLossRecoversAgain) {
  const Graph graph = PipelineModel();
  RouterOptions options = RecoveryOptions();
  Router router(ClusterSpec::Homogeneous(ChipSpec::ScaledIpu(8), 3), graph, options);
  ASSERT_TRUE(router.Start().ok());

  std::set<std::int64_t> accepted;
  auto submit_batch = [&](int count, int base) {
    for (int i = 0; i < count; ++i) {
      Request request;
      request.op_slot = 0;
      request.input_seed = static_cast<std::uint64_t>(base + i);
      request.max_retries = 4;
      StatusOr<std::int64_t> id = router.Submit(request);
      if (id.ok()) {
        accepted.insert(*id);
      }
    }
  };

  submit_batch(4, 0);
  router.KillChip(2);
  ASSERT_TRUE(WaitFor([&] { return router.stats().recoveries >= 1; }));
  submit_batch(4, 4);
  router.KillChip(0);
  ASSERT_TRUE(WaitFor([&] { return router.stats().recoveries >= 2; }))
      << "second chip loss did not trigger a second repartition";
  submit_batch(4, 8);
  router.WaitIdle();

  const std::map<std::int64_t, Response> by_id =
      AuditExactlyOnce(accepted, router.TakeResponses());
  for (const auto& [id, response] : by_id) {
    if (response.status.ok()) {
      EXPECT_TRUE(response.bit_identical) << "id " << id;
    }
  }
  const RouterStats stats = router.stats();
  EXPECT_EQ(stats.recoveries, 2);
  EXPECT_EQ(stats.cluster_epoch, 2);
  // The whole model now serves from the single surviving chip.
  EXPECT_EQ(router.num_shards(), 1);
  EXPECT_TRUE(router.Shutdown().ok());
}

}  // namespace
}  // namespace serve
}  // namespace t10
