// Robustness semantics of the sharded multi-chip serving tier
// (src/serve/router): every accepted request gets exactly one response even
// across redirects and hedges; a chip kill fails the shard over to survivors
// with nothing lost; a total outage (every chip killed) still answers every
// queued request and leaves an ordered shard-death sequence in the flight
// recorder; brownout admission sheds latest-deadline-first globally; and the
// seed-derived retry backoff jitter is deterministic.

#include "src/serve/router.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/ir/builder.h"
#include "src/obs/journal.h"
#include "src/serve/executor_pool.h"

namespace t10 {
namespace serve {
namespace {

Graph SmallModel() {
  Graph g("serve-small");
  g.Add(MatMulOp("fc1", 8, 16, 8, DataType::kF32, "x", "w1", "h1"));
  g.Add(ElementwiseOp("relu", {8, 8}, DataType::kF32, "h1", "h2"));
  g.Add(MatMulOp("fc2", 8, 8, 8, DataType::kF32, "h2", "w2", "y"));
  g.MarkWeight("w1");
  g.MarkWeight("w2");
  return g;
}

RouterOptions FastOptions(int shards) {
  RouterOptions options;
  options.num_shards = shards;
  options.shard.num_workers = 2;
  options.shard.health_poll_seconds = 0.002;
  options.shard.retry_backoff_base_seconds = 0.0;
  options.poll_seconds = 0.002;
  return options;
}

// Spin-waits (with timeout) for a condition driven by background threads,
// e.g. the router's monitor marking a killed shard down.
template <typename Predicate>
bool WaitFor(Predicate predicate, double timeout_seconds = 20.0) {
  const auto deadline = Clock::now() + std::chrono::duration<double>(timeout_seconds);
  while (!predicate()) {
    if (Clock::now() >= deadline) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

// Audits the one-response-per-accepted-request invariant and returns the
// responses keyed by client id.
std::map<std::int64_t, Response> AuditExactlyOnce(
    const std::set<std::int64_t>& accepted, std::vector<Response> responses) {
  std::map<std::int64_t, Response> by_id;
  for (Response& response : responses) {
    EXPECT_TRUE(accepted.count(response.id)) << "unknown response id " << response.id;
    EXPECT_FALSE(by_id.count(response.id)) << "duplicated response id " << response.id;
    by_id.emplace(response.id, std::move(response));
  }
  for (const std::int64_t id : accepted) {
    EXPECT_TRUE(by_id.count(id)) << "lost response for id " << id;
  }
  return by_id;
}

TEST(RouterTest, ServesAcrossShardsExactlyOnceEach) {
  const Graph graph = SmallModel();
  Router router(ChipSpec::ScaledIpu(8), graph, FastOptions(3));
  ASSERT_TRUE(router.Start().ok());
  EXPECT_EQ(router.num_shards(), 3);
  EXPECT_EQ(router.routable_shards(), 3);

  std::set<std::int64_t> accepted;
  for (int i = 0; i < 30; ++i) {
    Request request;
    request.op_slot = i % router.num_op_slots();
    request.input_seed = static_cast<std::uint64_t>(i);
    StatusOr<std::int64_t> id = router.Submit(request);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    accepted.insert(*id);
  }
  router.WaitIdle();
  const std::map<std::int64_t, Response> by_id =
      AuditExactlyOnce(accepted, router.TakeResponses());

  std::set<int> shards_used;
  for (const auto& [id, response] : by_id) {
    EXPECT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_TRUE(response.bit_identical);
    shards_used.insert(response.shard);
  }
  // Weighted least-loaded routing over three idle shards must spread load.
  EXPECT_GE(shards_used.size(), 2u);
  EXPECT_TRUE(router.Shutdown().ok());
}

TEST(RouterTest, SubmitValidatesStateAndArguments) {
  const Graph graph = SmallModel();
  Router router(ChipSpec::ScaledIpu(8), graph, FastOptions(2));

  Request request;
  EXPECT_EQ(router.Submit(request).status().code(), StatusCode::kFailedPrecondition);

  ASSERT_TRUE(router.Start().ok());
  request.op_slot = 99;
  EXPECT_EQ(router.Submit(request).status().code(), StatusCode::kInvalidArgument);
  request.op_slot = 0;
  request.max_retries = -1;
  EXPECT_EQ(router.Submit(request).status().code(), StatusCode::kInvalidArgument);

  EXPECT_TRUE(router.Shutdown().ok());
  request.max_retries = 2;
  EXPECT_EQ(router.Submit(request).status().code(), StatusCode::kFailedPrecondition);
  // Shutdown is idempotent.
  EXPECT_TRUE(router.Shutdown().ok());
}

TEST(RouterTest, ChipKillFailsOverToSurvivorsWithNothingLost) {
  const Graph graph = SmallModel();
  obs::EventJournal journal;
  RouterOptions options = FastOptions(3);
  options.journal = &journal;
  Router router(ChipSpec::ScaledIpu(8), graph, options);
  ASSERT_TRUE(router.Start().ok());

  std::set<std::int64_t> accepted;
  auto submit_batch = [&](int count, int base) {
    for (int i = 0; i < count; ++i) {
      Request request;
      request.op_slot = (base + i) % router.num_op_slots();
      request.input_seed = static_cast<std::uint64_t>(base + i);
      StatusOr<std::int64_t> id = router.Submit(request);
      if (id.ok()) {
        accepted.insert(*id);
      }
    }
  };

  submit_batch(12, 0);
  router.KillChip(0);
  ASSERT_TRUE(WaitFor([&] {
    return router.shard_snapshot(0).state == ShardState::kDown;
  }));
  // Client ids are monotonic: everything from here on postdates the kill.
  const std::int64_t post_kill_boundary = accepted.empty() ? 0 : *accepted.rbegin() + 1;
  submit_batch(12, 12);
  router.WaitIdle();

  const std::map<std::int64_t, Response> by_id =
      AuditExactlyOnce(accepted, router.TakeResponses());
  // Work admitted after the kill routes only to the two survivors (pre-kill
  // work may legitimately have completed on shard 0 before the chip died).
  for (const auto& [id, response] : by_id) {
    if (response.status.ok()) {
      EXPECT_TRUE(response.bit_identical);
      if (id >= post_kill_boundary) {
        EXPECT_NE(response.shard, 0);
      }
    }
  }
  EXPECT_EQ(router.routable_shards(), 2);
  const RouterStats stats = router.stats();
  EXPECT_EQ(stats.shard_downs, 1);
  EXPECT_GE(stats.rebalances, 1);

  // Exactly one router-level shard_down in the journal.
  int shard_down_events = 0;
  for (const obs::Event& event : journal.Snapshot()) {
    if (event.event == "router.shard_down") {
      ++shard_down_events;
    }
  }
  EXPECT_EQ(shard_down_events, 1);
  EXPECT_TRUE(router.Shutdown().ok());  // Two survivors: shutdown is OK.
}

// Satellite: total-outage semantics. Every chip killed in sequence; all
// queued/in-flight requests are answered with errors (none lost, none
// duplicated), the journal announces router.total_outage, and the flight
// recorder's final dump carries the shard deaths in kill order.
TEST(RouterTest, TotalOutageAnswersEverythingAndRecordsOrderedDeaths) {
  const Graph graph = SmallModel();
  obs::EventJournal journal;
  const std::string dump_path =
      ::testing::TempDir() + "/router_total_outage_fr.json";
  RouterOptions options = FastOptions(3);
  options.journal = &journal;
  options.flight_recorder_path = dump_path;
  // Slow the shards down so killed chips still hold queued work.
  options.shard.num_workers = 1;
  options.shard.pace_time_scale = 200000.0;
  Router router(ChipSpec::ScaledIpu(8), graph, options);
  ASSERT_TRUE(router.Start().ok());

  std::set<std::int64_t> accepted;
  for (int i = 0; i < 18; ++i) {
    Request request;
    request.op_slot = i % router.num_op_slots();
    request.input_seed = static_cast<std::uint64_t>(i);
    StatusOr<std::int64_t> id = router.Submit(request);
    if (id.ok()) {
      accepted.insert(*id);
    }
  }
  ASSERT_FALSE(accepted.empty());

  for (int shard = 0; shard < 3; ++shard) {
    router.KillChip(shard);
    ASSERT_TRUE(WaitFor([&] {
      return router.shard_snapshot(shard).state == ShardState::kDown;
    })) << "shard " << shard << " never went down";
  }
  // The total-outage announcement (and its flight-recorder dump) runs in the
  // monitor sweep right after the last shard-down mark; wait for it before
  // inspecting the journal and the dump file.
  ASSERT_TRUE(WaitFor([&] {
    for (const obs::Event& event : journal.Snapshot()) {
      if (event.event == "router.total_outage") {
        return true;
      }
    }
    return false;
  }));
  router.WaitIdle();

  const std::map<std::int64_t, Response> by_id =
      AuditExactlyOnce(accepted, router.TakeResponses());
  std::int64_t errored = 0;
  for (const auto& [id, response] : by_id) {
    // A request that finished before the first chip died may be OK (and must
    // have passed its audit); everything queued or in flight at the outage
    // is answered with a terminal error, never dropped.
    if (response.status.ok()) {
      EXPECT_TRUE(response.bit_identical);
    } else {
      ++errored;
    }
  }
  EXPECT_GE(errored, 1);
  EXPECT_EQ(router.routable_shards(), 0);
  EXPECT_EQ(router.stats().shard_downs, 3);

  std::vector<int> death_order;
  for (const obs::Event& event : journal.Snapshot()) {
    if (event.event == "router.shard_down") {
      death_order.push_back(event.detail.find("shard 0") == 0   ? 0
                            : event.detail.find("shard 1") == 0 ? 1
                                                                : 2);
    }
  }
  EXPECT_EQ(death_order, (std::vector<int>{0, 1, 2}));

  // The flight recorder's last dump (fired at total outage) holds the full
  // ordered sequence. The journal event above races the file write, so poll
  // until the finished dump is on disk.
  std::string dump;
  ASSERT_TRUE(WaitFor([&] {
    std::ifstream in(dump_path);
    if (!in.good()) {
      return false;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    dump = buffer.str();
    return dump.find("total outage") != std::string::npos &&
           dump.find("shard 2 lost") != std::string::npos;
  }));
  const std::string::size_type d0 = dump.find("shard 0 lost");
  const std::string::size_type d1 = dump.find("shard 1 lost");
  const std::string::size_type d2 = dump.find("shard 2 lost");
  ASSERT_NE(d0, std::string::npos);
  ASSERT_NE(d1, std::string::npos);
  ASSERT_NE(d2, std::string::npos);
  EXPECT_LT(d0, d1);
  EXPECT_LT(d1, d2);

  // No shard survived: shutdown reports the (shared) failure.
  EXPECT_FALSE(router.Shutdown().ok());
  std::remove(dump_path.c_str());
}

TEST(RouterTest, HedgedRetryDeliversExactlyOneResponse) {
  const Graph graph = SmallModel();
  RouterOptions options = FastOptions(2);
  // One slow paced worker per shard (~0.2s+ service) with the hedge point at
  // 1% of a 20s deadline: queued requests reliably cross it, nothing expires.
  options.shard.num_workers = 1;
  options.shard.pace_time_scale = 100000.0;
  options.hedge_fraction = 0.01;
  Router router(ChipSpec::ScaledIpu(8), graph, options);
  ASSERT_TRUE(router.Start().ok());

  std::set<std::int64_t> accepted;
  for (int i = 0; i < 6; ++i) {
    Request request;
    request.op_slot = i % router.num_op_slots();
    request.input_seed = static_cast<std::uint64_t>(i);
    request.deadline_seconds = 20.0;  // Generous: hedges fire, nothing expires.
    StatusOr<std::int64_t> id = router.Submit(request);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    accepted.insert(*id);
  }
  router.WaitIdle();
  const std::map<std::int64_t, Response> by_id =
      AuditExactlyOnce(accepted, router.TakeResponses());
  for (const auto& [id, response] : by_id) {
    EXPECT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_TRUE(response.bit_identical);
  }
  const RouterStats stats = router.stats();
  EXPECT_GE(stats.hedges, 1);
  // Every hedge has a loser, and the router swallowed all of them.
  EXPECT_GE(stats.hedge_wasted, 1);
  EXPECT_TRUE(router.Shutdown().ok());
}

TEST(RouterTest, BrownoutShedsLatestDeadlineForEarlierArrival) {
  const Graph graph = SmallModel();
  obs::EventJournal journal;
  RouterOptions options = FastOptions(1);
  options.journal = &journal;
  options.shard.num_workers = 1;
  options.shard.queue_capacity = 1;
  options.shard.pace_time_scale = 100000.0;  // Worker busy ~0.2s per request.
  options.hedge_fraction = 0.0;
  Router router(ChipSpec::ScaledIpu(8), graph, options);
  ASSERT_TRUE(router.Start().ok());

  // A occupies the worker; B fills the 1-deep queue with a late deadline.
  Request occupy;
  occupy.op_slot = 0;
  occupy.deadline_seconds = 60.0;
  StatusOr<std::int64_t> a = router.Submit(occupy);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(WaitFor([&] { return router.shard_snapshot(0).queue_depth == 0; }));

  Request late;
  late.op_slot = 0;
  late.deadline_seconds = 50.0;
  StatusOr<std::int64_t> b = router.Submit(late);
  ASSERT_TRUE(b.ok()) << b.status().ToString();

  // An incoming request with no deadline is "latest" by definition: shed.
  Request no_deadline;
  no_deadline.op_slot = 0;
  EXPECT_EQ(router.Submit(no_deadline).status().code(), StatusCode::kResourceExhausted);

  // An earlier-deadline arrival evicts B instead of being shed.
  Request early;
  early.op_slot = 0;
  early.deadline_seconds = 5.0;
  StatusOr<std::int64_t> c = router.Submit(early);
  ASSERT_TRUE(c.ok()) << c.status().ToString();

  router.WaitIdle();
  std::map<std::int64_t, Response> by_id;
  for (Response& response : router.TakeResponses()) {
    by_id.emplace(response.id, std::move(response));
  }
  ASSERT_TRUE(by_id.count(*a));
  ASSERT_TRUE(by_id.count(*b));
  ASSERT_TRUE(by_id.count(*c));
  EXPECT_TRUE(by_id[*a].status.ok());
  EXPECT_EQ(by_id[*b].status.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(by_id[*c].status.ok());
  EXPECT_GE(router.stats().brownout_shed, 1);

  bool logged = false;
  for (const obs::Event& event : journal.Snapshot()) {
    if (event.event == "router.brownout_shed") {
      logged = true;
    }
  }
  EXPECT_TRUE(logged);
  EXPECT_TRUE(router.Shutdown().ok());
}

// Satellite: deterministic seed-derived retry backoff jitter. Same seed =>
// identical schedule; jitter stays within [0.5x, 1.0x) of the exponential
// envelope so synchronized retries cannot stampede a recovering shard.
TEST(RouterBackoffTest, JitterIsDeterministicAndBounded) {
  const double base = 0.010;
  for (int attempt = 0; attempt < 8; ++attempt) {
    const double envelope = base * static_cast<double>(1 << attempt);
    for (const std::uint64_t key : {0ull, 1ull, 42ull, 0xdeadbeefull}) {
      const double first = RetryBackoffSeconds(base, attempt, key);
      const double second = RetryBackoffSeconds(base, attempt, key);
      EXPECT_EQ(first, second) << "attempt " << attempt << " key " << key;
      EXPECT_GE(first, 0.5 * envelope);
      EXPECT_LT(first, envelope);
    }
  }
}

TEST(RouterBackoffTest, DifferentKeysDesynchronize) {
  // Two requests retrying in lockstep must not share a schedule: over many
  // keys the jitter must actually vary (catching a constant-jitter bug).
  std::set<std::int64_t> buckets;
  for (std::uint64_t key = 0; key < 64; ++key) {
    const double backoff = RetryBackoffSeconds(0.010, 3, key);
    buckets.insert(static_cast<std::int64_t>(backoff * 1e7));
  }
  EXPECT_GE(buckets.size(), 32u);
}

// ---------------------------------------------------------------------------
// Pipeline mode: one model partitioned across a chain of per-chip stages.
// ---------------------------------------------------------------------------

Graph PipelineModel() {
  Graph g("serve-pipe");
  g.Add(MatMulOp("fc1", 16, 32, 32, DataType::kF32, "x", "w1", "h1"));
  g.Add(ElementwiseOp("relu", {16, 32}, DataType::kF32, "h1", "h2"));
  g.Add(MatMulOp("fc2", 16, 32, 32, DataType::kF32, "h2", "w2", "h3"));
  g.Add(MatMulOp("fc3", 16, 32, 16, DataType::kF32, "h3", "w3", "y"));
  g.MarkWeight("w1");
  g.MarkWeight("w2");
  g.MarkWeight("w3");
  return g;
}

ClusterSpec PipelineCluster(int chips) {
  return ClusterSpec::Homogeneous(ChipSpec::ScaledIpu(8), chips);
}

TEST(RouterPipelineTest, ChainsDeliverExactlyOnceWithHandoffs) {
  const Graph graph = PipelineModel();
  Router router(PipelineCluster(4), graph, FastOptions(0));
  ASSERT_TRUE(router.Start().ok());
  EXPECT_EQ(router.mode(), ShardMode::kPipeline);
  EXPECT_EQ(router.num_shards(), 4);
  // A pipeline request means "run the whole model": one logical slot.
  EXPECT_EQ(router.num_op_slots(), 1);

  std::set<std::int64_t> accepted;
  for (int i = 0; i < 16; ++i) {
    Request request;
    request.op_slot = 0;
    request.input_seed = static_cast<std::uint64_t>(i);
    StatusOr<std::int64_t> id = router.Submit(request);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    accepted.insert(*id);
  }
  router.WaitIdle();
  const std::map<std::int64_t, Response> by_id =
      AuditExactlyOnce(accepted, router.TakeResponses());
  for (const auto& [id, response] : by_id) {
    EXPECT_TRUE(response.status.ok()) << response.status.ToString();
    // The chain's audit bit is the AND over every stage's operators.
    EXPECT_TRUE(response.bit_identical);
    // The answer comes off the final stage.
    EXPECT_EQ(response.shard, 3);
  }
  // Every chain crosses every cut exactly once: 16 requests x 3 handoffs.
  EXPECT_EQ(router.stats().handoffs, 16 * 3);
  EXPECT_TRUE(router.Shutdown().ok());
}

TEST(RouterPipelineTest, RejectsNonZeroOpSlot) {
  const Graph graph = PipelineModel();
  Router router(PipelineCluster(2), graph, FastOptions(0));
  ASSERT_TRUE(router.Start().ok());
  Request request;
  request.op_slot = 1;
  EXPECT_EQ(router.Submit(request).status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(router.Shutdown().ok());
}

TEST(RouterPipelineTest, InfeasiblePartitionFailsStart) {
  Graph graph = PipelineModel();
  ChipSpec chip = ChipSpec::ScaledIpu(2);
  chip.core_memory_bytes = 1024;  // No stage of the model can fit.
  Router router(ClusterSpec::Homogeneous(chip, 2), graph, FastOptions(0));
  EXPECT_EQ(router.Start().code(), StatusCode::kFailedPrecondition);
}

// Satellite: pipeline failure semantics under a mid-chain core kill. Exactly
// one stage replans (its epoch bumps, every other stage stays at 0), no
// response is lost or duplicated, and surviving chains keep a clean
// bit-identity audit.
TEST(RouterPipelineTest, CoreKillReplansOnlyTheDeadStage) {
  const Graph graph = PipelineModel();
  obs::EventJournal journal;
  RouterOptions options = FastOptions(0);
  options.journal = &journal;
  Router router(PipelineCluster(4), graph, options);
  ASSERT_TRUE(router.Start().ok());

  std::set<std::int64_t> accepted;
  auto submit_batch = [&](int count, int base) {
    for (int i = 0; i < count; ++i) {
      Request request;
      request.op_slot = 0;
      request.input_seed = static_cast<std::uint64_t>(base + i);
      StatusOr<std::int64_t> id = router.Submit(request);
      if (id.ok()) {
        accepted.insert(*id);
      }
    }
  };

  submit_batch(8, 0);
  router.KillCore(/*shard=*/1, /*core=*/0);
  ASSERT_TRUE(WaitFor([&] { return router.shard_snapshot(1).plan_epoch >= 1; }))
      << "stage 1 never replanned";
  submit_batch(8, 8);
  router.WaitIdle();

  const std::map<std::int64_t, Response> by_id =
      AuditExactlyOnce(accepted, router.TakeResponses());
  for (const auto& [id, response] : by_id) {
    if (response.status.ok()) {
      EXPECT_TRUE(response.bit_identical);
      EXPECT_EQ(response.shard, 3);
    }
  }
  // Exactly one stage re-planned; the rest never left epoch 0.
  EXPECT_GE(router.shard_snapshot(1).plan_epoch, 1);
  for (const int stage : {0, 2, 3}) {
    EXPECT_EQ(router.shard_snapshot(stage).plan_epoch, 0) << "stage " << stage;
  }
  EXPECT_EQ(router.stats().shard_downs, 0);
  EXPECT_EQ(router.routable_shards(), 4);
  EXPECT_TRUE(router.Shutdown().ok());
}

// Satellite: a chip kill takes its stage down permanently. A stage has no
// replica, so chains that must cross it are answered with an error — exactly
// once each, nothing lost — and the journal records the stage loss.
TEST(RouterPipelineTest, ChipKillFailsChainsCrossingTheStageExactlyOnce) {
  const Graph graph = PipelineModel();
  obs::EventJournal journal;
  RouterOptions options = FastOptions(0);
  options.journal = &journal;
  Router router(PipelineCluster(4), graph, options);
  ASSERT_TRUE(router.Start().ok());

  std::set<std::int64_t> accepted;
  auto submit_batch = [&](int count, int base) {
    for (int i = 0; i < count; ++i) {
      Request request;
      request.op_slot = 0;
      request.input_seed = static_cast<std::uint64_t>(base + i);
      StatusOr<std::int64_t> id = router.Submit(request);
      if (id.ok()) {
        accepted.insert(*id);
      }
    }
  };

  submit_batch(8, 0);
  router.KillChip(2);
  ASSERT_TRUE(WaitFor([&] {
    return router.shard_snapshot(2).state == ShardState::kDown;
  }));
  const std::int64_t post_kill_boundary = accepted.empty() ? 0 : *accepted.rbegin() + 1;
  submit_batch(8, 8);
  router.WaitIdle();

  const std::map<std::int64_t, Response> by_id =
      AuditExactlyOnce(accepted, router.TakeResponses());
  for (const auto& [id, response] : by_id) {
    if (id >= post_kill_boundary) {
      // Every post-kill chain must cross dead stage 2: answered with an
      // error, never dropped.
      EXPECT_FALSE(response.status.ok()) << "id " << id;
    } else if (response.status.ok()) {
      EXPECT_TRUE(response.bit_identical);
    }
  }
  EXPECT_EQ(router.stats().shard_downs, 1);
  EXPECT_EQ(router.routable_shards(), 3);
  // recover_on_chip_loss is off by default: a chip loss must keep these
  // stage-down semantics untouched — no repartition, epoch stays 0.
  EXPECT_EQ(router.stats().recoveries, 0);
  EXPECT_EQ(router.stats().cluster_epoch, 0);
  EXPECT_EQ(router.num_shards(), 4);

  bool stage_down_logged = false;
  for (const obs::Event& event : journal.Snapshot()) {
    if (event.event == "router.pipeline.stage_down") {
      stage_down_logged = true;
    }
  }
  EXPECT_TRUE(stage_down_logged);
  EXPECT_TRUE(router.Shutdown().ok());
}

TEST(RouterPipelineTest, DeadlineBudgetPropagatesDownTheChain) {
  const Graph graph = PipelineModel();
  Router router(PipelineCluster(3), graph, FastOptions(0));
  ASSERT_TRUE(router.Start().ok());

  // An already-hopeless budget expires somewhere down the chain and comes
  // back as deadline_exceeded — one response, not a lost chain.
  Request hopeless;
  hopeless.op_slot = 0;
  hopeless.deadline_seconds = 1e-9;
  StatusOr<std::int64_t> doomed = router.Submit(hopeless);
  // Admission may reject it outright (also fine) — but if accepted, it must
  // resolve as deadline_exceeded.
  Request generous;
  generous.op_slot = 0;
  generous.deadline_seconds = 30.0;
  StatusOr<std::int64_t> fine = router.Submit(generous);
  ASSERT_TRUE(fine.ok()) << fine.status().ToString();
  router.WaitIdle();

  std::map<std::int64_t, Response> by_id;
  for (Response& response : router.TakeResponses()) {
    by_id.emplace(response.id, std::move(response));
  }
  if (doomed.ok()) {
    ASSERT_TRUE(by_id.count(*doomed));
    EXPECT_EQ(by_id[*doomed].status.code(), StatusCode::kDeadlineExceeded);
  }
  ASSERT_TRUE(by_id.count(*fine));
  EXPECT_TRUE(by_id[*fine].status.ok()) << by_id[*fine].status.ToString();
  EXPECT_TRUE(router.Shutdown().ok());
}

TEST(RouterTest, ExpiredBudgetIsRefusedBeforeRouting) {
  // Every attempt — route, redirect, hedge — recomputes the REMAINING
  // deadline budget under the router lock before submitting, so time spent
  // queued, failing over or parked is charged instead of silently granting
  // the shard the original end-to-end window. The route path is the
  // observable anchor: a budget that is already gone by routing time must
  // come back kDeadlineExceeded, never reach a shard with fresh slack.
  const Graph graph = SmallModel();
  Router router(ChipSpec::ScaledIpu(8), graph, FastOptions(2));
  ASSERT_TRUE(router.Start().ok());

  Request hopeless;
  hopeless.op_slot = 0;
  hopeless.deadline_seconds = 1e-12;  // Expired before SubmitAttempt runs.
  const StatusOr<std::int64_t> refused = router.Submit(hopeless);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kDeadlineExceeded);

  // A live budget still routes and completes.
  Request generous;
  generous.op_slot = 0;
  generous.deadline_seconds = 30.0;
  const StatusOr<std::int64_t> fine = router.Submit(generous);
  ASSERT_TRUE(fine.ok()) << fine.status().ToString();
  router.WaitIdle();
  bool answered = false;
  for (const Response& response : router.TakeResponses()) {
    if (response.id == *fine) {
      answered = true;
      EXPECT_TRUE(response.status.ok()) << response.status.ToString();
    }
  }
  EXPECT_TRUE(answered);
  EXPECT_TRUE(router.Shutdown().ok());
}

TEST(RouterBackoffTest, ZeroBaseStaysZero) {
  // Tests run with retry_backoff_base_seconds = 0 for speed; jitter must not
  // manufacture a delay out of nothing.
  EXPECT_EQ(RetryBackoffSeconds(0.0, 0, 7), 0.0);
  EXPECT_EQ(RetryBackoffSeconds(0.0, 5, 7), 0.0);
}

}  // namespace
}  // namespace serve
}  // namespace t10
