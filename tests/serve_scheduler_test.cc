// Admission-queue contract of the serving scheduler: earliest-deadline-first
// ordering, synchronous load shedding at capacity (kResourceExhausted),
// capacity-exempt failover re-queues, and a Close() that stops admission but
// drains the backlog.

#include "src/serve/scheduler.h"

#include <gtest/gtest.h>

#include <optional>
#include <thread>
#include <vector>

namespace t10 {
namespace serve {
namespace {

Request WithDeadline(double seconds) {
  Request request;
  request.deadline_seconds = seconds;
  return request;
}

TEST(SchedulerTest, AssignsDistinctIdsInAdmissionOrder) {
  Scheduler scheduler(8);
  StatusOr<std::int64_t> a = scheduler.Submit(Request{});
  StatusOr<std::int64_t> b = scheduler.Submit(Request{});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LT(*a, *b);
  EXPECT_EQ(scheduler.size(), 2);
}

TEST(SchedulerTest, PopsEarliestDeadlineFirst) {
  Scheduler scheduler(8);
  ASSERT_TRUE(scheduler.Submit(WithDeadline(30.0)).ok());
  ASSERT_TRUE(scheduler.Submit(Request{}).ok());  // No deadline: sorts last.
  ASSERT_TRUE(scheduler.Submit(WithDeadline(10.0)).ok());
  ASSERT_TRUE(scheduler.Submit(WithDeadline(20.0)).ok());

  std::vector<double> order;
  for (int i = 0; i < 4; ++i) {
    std::optional<AdmittedRequest> popped = scheduler.PopBlocking();
    ASSERT_TRUE(popped.has_value());
    order.push_back(popped->request.deadline_seconds);
  }
  EXPECT_EQ(order, (std::vector<double>{10.0, 20.0, 30.0, 0.0}));
}

TEST(SchedulerTest, NoDeadlineTiesPopInFifoOrder) {
  Scheduler scheduler(8);
  StatusOr<std::int64_t> first = scheduler.Submit(Request{});
  StatusOr<std::int64_t> second = scheduler.Submit(Request{});
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(scheduler.PopBlocking()->id, *first);
  EXPECT_EQ(scheduler.PopBlocking()->id, *second);
}

TEST(SchedulerTest, ShedsAtCapacityWithResourceExhausted) {
  Scheduler scheduler(2);
  ASSERT_TRUE(scheduler.Submit(Request{}).ok());
  ASSERT_TRUE(scheduler.Submit(Request{}).ok());
  StatusOr<std::int64_t> shed = scheduler.Submit(Request{});
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  // Popping frees a slot; admission resumes.
  ASSERT_TRUE(scheduler.PopBlocking().has_value());
  EXPECT_TRUE(scheduler.Submit(Request{}).ok());
}

TEST(SchedulerTest, NegativeRetryBudgetIsInvalidArgument) {
  Scheduler scheduler(2);
  Request request;
  request.max_retries = -1;
  StatusOr<std::int64_t> result = scheduler.Submit(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchedulerTest, RequeueBypassesCapacityAndCountsRequeues) {
  Scheduler scheduler(1);
  ASSERT_TRUE(scheduler.Submit(WithDeadline(5.0)).ok());
  std::optional<AdmittedRequest> popped = scheduler.PopBlocking();
  ASSERT_TRUE(popped.has_value());
  ASSERT_TRUE(scheduler.Submit(Request{}).ok());  // Queue full again.

  // The re-queued request is owed a response, so it goes back in even at
  // capacity, and keeps its deadline ordering (it pops before the
  // deadline-less request).
  ASSERT_TRUE(scheduler.Requeue(*popped).ok());
  EXPECT_EQ(scheduler.size(), 2);
  std::optional<AdmittedRequest> again = scheduler.PopBlocking();
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->id, popped->id);
  EXPECT_EQ(again->requeues, 1);
}

TEST(SchedulerTest, CloseStopsAdmissionButDrainsBacklog) {
  Scheduler scheduler(4);
  ASSERT_TRUE(scheduler.Submit(Request{}).ok());
  ASSERT_TRUE(scheduler.Submit(Request{}).ok());
  scheduler.Close();

  StatusOr<std::int64_t> late = scheduler.Submit(Request{});
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(scheduler.Requeue(AdmittedRequest{}).ok());

  EXPECT_TRUE(scheduler.PopBlocking().has_value());
  EXPECT_TRUE(scheduler.PopBlocking().has_value());
  EXPECT_FALSE(scheduler.PopBlocking().has_value());  // Drained: nullopt.
  EXPECT_FALSE(scheduler.PopBlocking().has_value());  // And stays that way.
}

TEST(SchedulerTest, PopBlocksUntilSubmit) {
  Scheduler scheduler(4);
  std::optional<AdmittedRequest> popped;
  std::thread popper([&] { popped = scheduler.PopBlocking(); });
  Request request;
  request.input_seed = 99;
  ASSERT_TRUE(scheduler.Submit(request).ok());
  popper.join();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->request.input_seed, 99u);
}

TEST(SchedulerTest, ExpiryIsVisibleOnThePoppedRequest) {
  Scheduler scheduler(4);
  ASSERT_TRUE(scheduler.Submit(WithDeadline(1e-9)).ok());
  std::optional<AdmittedRequest> popped = scheduler.PopBlocking();
  ASSERT_TRUE(popped.has_value());
  EXPECT_TRUE(popped->has_deadline);
  EXPECT_TRUE(popped->ExpiredAt(Clock::now() + std::chrono::milliseconds(1)));
}

}  // namespace
}  // namespace serve
}  // namespace t10
