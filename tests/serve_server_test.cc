// Failure semantics of the serving runtime (src/serve): every accepted
// request gets exactly one response; deadline expiry surfaces as
// kDeadlineExceeded without wedging the scheduler; an exhausted retry budget
// surfaces the underlying fault status; graceful shutdown drains the queue;
// a chaos-killed core triggers exactly one online failover whose responses
// are bit-identical to the fault-free reference on the surviving-core plan;
// and an unsurvivable failure parks the server in kFailed with queued
// requests answered, not lost.

#include "src/serve/server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "src/ir/builder.h"
#include "src/serve/health_monitor.h"

namespace t10 {
namespace serve {
namespace {

ChipSpec TinyChip(int cores) { return ChipSpec::ScaledIpu(cores); }

Graph SmallModel() {
  Graph g("serve-small");
  g.Add(MatMulOp("fc1", 8, 16, 8, DataType::kF32, "x", "w1", "h1"));
  g.Add(ElementwiseOp("relu", {8, 8}, DataType::kF32, "h1", "h2"));
  g.Add(MatMulOp("fc2", 8, 8, 8, DataType::kF32, "h2", "w2", "y"));
  g.MarkWeight("w1");
  g.MarkWeight("w2");
  return g;
}

ServerOptions FastOptions() {
  ServerOptions options;
  options.num_workers = 2;
  options.health_poll_seconds = 0.002;
  options.retry_backoff_base_seconds = 0.0;
  return options;
}

// Spin-waits (with timeout) for a server condition driven by background
// threads, e.g. the health monitor completing a failover.
template <typename Predicate>
bool WaitFor(Predicate predicate, double timeout_seconds = 20.0) {
  const auto deadline = Clock::now() + std::chrono::duration<double>(timeout_seconds);
  while (!predicate()) {
    if (Clock::now() >= deadline) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

TEST(ServeServerTest, ServesBitIdenticalResponses) {
  const Graph graph = SmallModel();
  Server server(TinyChip(8), graph, FastOptions());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_EQ(server.num_op_slots(), 3);
  EXPECT_EQ(server.op_slot_name(0), "fc1");

  std::set<std::int64_t> ids;
  for (int i = 0; i < 9; ++i) {
    Request request;
    request.op_slot = i % server.num_op_slots();
    request.input_seed = 100 + static_cast<std::uint64_t>(i);
    StatusOr<std::int64_t> id = server.Submit(request);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    EXPECT_TRUE(ids.insert(*id).second) << "duplicate id";
  }
  server.WaitIdle();
  const std::vector<Response> responses = server.TakeResponses();
  ASSERT_EQ(responses.size(), 9u);
  for (const Response& response : responses) {
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_TRUE(response.bit_identical);
    EXPECT_EQ(response.plan_epoch, 0);
    EXPECT_GT(response.output.data.size(), 0u);
    EXPECT_EQ(ids.count(response.id), 1u);
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 9);
  EXPECT_EQ(stats.responses, 9);
  EXPECT_EQ(stats.ok, 9);
  EXPECT_EQ(stats.failovers, 0);
  EXPECT_TRUE(server.Shutdown().ok());
  EXPECT_EQ(server.state(), ServerState::kStopped);
}

TEST(ServeServerTest, LifecycleErrors) {
  const Graph graph = SmallModel();
  Server server(TinyChip(8), graph, FastOptions());

  StatusOr<std::int64_t> early = server.Submit(Request{});
  ASSERT_FALSE(early.ok());
  EXPECT_EQ(early.status().code(), StatusCode::kFailedPrecondition);

  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.Start().code(), StatusCode::kFailedPrecondition);

  Request bad_slot;
  bad_slot.op_slot = 99;
  StatusOr<std::int64_t> invalid = server.Submit(bad_slot);
  ASSERT_FALSE(invalid.ok());
  EXPECT_EQ(invalid.status().code(), StatusCode::kInvalidArgument);

  ASSERT_TRUE(server.Shutdown().ok());
  StatusOr<std::int64_t> late = server.Submit(Request{});
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(server.Shutdown().ok());  // Idempotent.
}

TEST(ServeServerTest, TransientCorruptionIsAbsorbed) {
  const Graph graph = SmallModel();
  ServerOptions options = FastOptions();
  options.faults.corrupt_rate = 0.02;
  options.faults.seed = 77;
  Server server(TinyChip(8), graph, options);
  ASSERT_TRUE(server.Start().ok());
  for (int i = 0; i < 6; ++i) {
    Request request;
    request.op_slot = i % server.num_op_slots();
    request.input_seed = static_cast<std::uint64_t>(i);
    ASSERT_TRUE(server.Submit(request).ok());
  }
  server.WaitIdle();
  for (const Response& response : server.TakeResponses()) {
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_TRUE(response.bit_identical);
  }
  EXPECT_TRUE(server.Shutdown().ok());
}

TEST(ServeServerTest, DeadlineExpiryDoesNotWedgeTheScheduler) {
  const Graph graph = SmallModel();
  ServerOptions options = FastOptions();
  options.num_workers = 1;  // Force the deadline request to wait in queue.
  Server server(TinyChip(8), graph, options);
  ASSERT_TRUE(server.Start().ok());

  Request blocker;  // Occupies the single worker first.
  StatusOr<std::int64_t> blocker_id = server.Submit(blocker);
  ASSERT_TRUE(blocker_id.ok());

  Request doomed;
  doomed.deadline_seconds = 1e-9;  // Expires while queued behind the blocker.
  StatusOr<std::int64_t> doomed_id = server.Submit(doomed);
  ASSERT_TRUE(doomed_id.ok());

  Request after;  // Must still be served: the scheduler is not wedged.
  after.input_seed = 5;
  StatusOr<std::int64_t> after_id = server.Submit(after);
  ASSERT_TRUE(after_id.ok());

  server.WaitIdle();
  const std::vector<Response> responses = server.TakeResponses();
  ASSERT_EQ(responses.size(), 3u);
  for (const Response& response : responses) {
    if (response.id == *doomed_id) {
      EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded)
          << response.status.ToString();
    } else {
      EXPECT_TRUE(response.status.ok()) << response.status.ToString();
    }
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.deadline_exceeded, 1);
  EXPECT_EQ(stats.ok, 2);
  EXPECT_TRUE(server.Shutdown().ok());
}

TEST(ServeServerTest, RetryBudgetExhaustionSurfacesUnderlyingStatus) {
  const Graph graph = SmallModel();
  ServerOptions options = FastOptions();
  options.num_workers = 1;
  // Corrupt every transfer and give the low-level reliability layer no
  // headroom, so each execution attempt terminates in kDataLoss.
  options.faults.burst_corrupt = 1'000'000'000;
  options.fault_tolerance.retry.max_retries = 0;
  options.fault_tolerance.retry.backoff_base_seconds = 1e-9;
  options.fault_tolerance.max_rollbacks = 0;
  Server server(TinyChip(8), graph, options);
  ASSERT_TRUE(server.Start().ok());

  Request request;
  request.op_slot = 0;  // fc1 rotates, so transfers (and faults) happen.
  request.max_retries = 2;
  ASSERT_TRUE(server.Submit(request).ok());
  server.WaitIdle();
  const std::vector<Response> responses = server.TakeResponses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status.code(), StatusCode::kDataLoss)
      << responses[0].status.ToString();
  EXPECT_EQ(responses[0].retries, 2);  // Whole budget was spent.
  EXPECT_TRUE(server.Shutdown().ok());
}

TEST(ServeServerTest, ShutdownDrainsTheQueue) {
  const Graph graph = SmallModel();
  ServerOptions options = FastOptions();
  options.num_workers = 1;
  Server server(TinyChip(8), graph, options);
  ASSERT_TRUE(server.Start().ok());
  const int submitted = 6;
  for (int i = 0; i < submitted; ++i) {
    Request request;
    request.op_slot = i % server.num_op_slots();
    ASSERT_TRUE(server.Submit(request).ok());
  }
  // No WaitIdle: shutdown itself must drain every queued request.
  ASSERT_TRUE(server.Shutdown().ok());
  const std::vector<Response> responses = server.TakeResponses();
  ASSERT_EQ(responses.size(), static_cast<std::size_t>(submitted));
  for (const Response& response : responses) {
    EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  }
}

TEST(ServeServerTest, ChaosCoreKillFailsOverOnceAndStaysBitIdentical) {
  const Graph graph = SmallModel();
  const ChipSpec chip = TinyChip(8);
  Server server(chip, graph, FastOptions());
  ASSERT_TRUE(server.Start().ok());

  for (int i = 0; i < 4; ++i) {
    Request request;
    request.op_slot = i % server.num_op_slots();
    request.input_seed = static_cast<std::uint64_t>(i);
    ASSERT_TRUE(server.Submit(request).ok());
  }
  server.WaitIdle();

  server.KillCore(chip.num_cores - 1);
  // The health monitor must notice, replan onto the surviving cores, verify
  // the degraded model, and swap it in as epoch 1 — exactly once.
  ASSERT_TRUE(WaitFor([&] {
    return server.plan_epoch() >= 1 && server.state() == ServerState::kServing;
  }));
  EXPECT_EQ(server.plan_epoch(), 1);
  EXPECT_EQ(server.stats().failovers, 1);

  for (int i = 0; i < 4; ++i) {
    Request request;
    request.op_slot = i % server.num_op_slots();
    // Same seeds as before the kill: same inputs, now on the degraded plan.
    request.input_seed = static_cast<std::uint64_t>(i);
    StatusOr<std::int64_t> id = server.Submit(request);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
  }
  server.WaitIdle();

  const std::vector<Response> responses = server.TakeResponses();
  ASSERT_EQ(responses.size(), 8u);
  int post_failover = 0;
  for (const Response& response : responses) {
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    // Bit-identical to the fault-free reference run of the same plan epoch
    // (for epoch 1: the surviving-core plan on a pristine machine).
    EXPECT_TRUE(response.bit_identical);
    if (response.plan_epoch >= 1) {
      ++post_failover;
    }
  }
  EXPECT_EQ(post_failover, 4);
  // No repeat failover for the same dead core.
  EXPECT_EQ(server.stats().failovers, 1);
  EXPECT_TRUE(server.Shutdown().ok());
}

TEST(ServeServerTest, MidFlightKillLosesNoResponses) {
  const Graph graph = SmallModel();
  const ChipSpec chip = TinyChip(8);
  Server server(chip, graph, FastOptions());
  ASSERT_TRUE(server.Start().ok());

  std::int64_t accepted = 0;
  for (int i = 0; i < 12; ++i) {
    if (i == 4) {
      server.KillCore(chip.num_cores - 1);
    }
    Request request;
    request.op_slot = i % server.num_op_slots();
    request.input_seed = static_cast<std::uint64_t>(i);
    StatusOr<std::int64_t> id = server.Submit(request);
    if (id.ok()) {
      ++accepted;  // The breaker may fail-fast some submissions mid-replan.
    } else {
      EXPECT_EQ(id.status().code(), StatusCode::kUnavailable)
          << id.status().ToString();
    }
  }
  server.WaitIdle();
  const std::vector<Response> responses = server.TakeResponses();
  EXPECT_EQ(static_cast<std::int64_t>(responses.size()), accepted);
  for (const Response& response : responses) {
    // In-flight requests that hit the dead core are re-queued across the
    // failover; only a request that keeps colliding may surface kUnavailable.
    if (response.status.ok()) {
      EXPECT_TRUE(response.bit_identical);
    } else {
      EXPECT_EQ(response.status.code(), StatusCode::kUnavailable)
          << response.status.ToString();
    }
  }
  // WaitIdle can return before the monitor finishes acting on the KillCore
  // suspicion (all 12 requests may complete on the epoch-0 plan); detection
  // itself is guaranteed, so wait for it rather than racing it.
  EXPECT_TRUE(WaitFor([&server] { return server.stats().failovers >= 1; }));
  EXPECT_TRUE(server.Shutdown().ok());
}

TEST(ServeServerTest, UnsurvivableFailureParksServerInFailed) {
  const Graph graph = SmallModel();
  const ChipSpec chip = TinyChip(4);
  Server server(chip, graph, FastOptions());
  ASSERT_TRUE(server.Start().ok());
  for (int core = 0; core < chip.num_cores; ++core) {
    server.KillCore(core);
  }
  ASSERT_TRUE(WaitFor([&] { return server.state() == ServerState::kFailed; }));

  StatusOr<std::int64_t> rejected = server.Submit(Request{});
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);

  const Status shutdown = server.Shutdown();
  EXPECT_FALSE(shutdown.ok());
  EXPECT_EQ(server.state(), ServerState::kStopped);
}

TEST(ServeHealthMonitorTest, AddsFailuresAndMerge) {
  TopologyHealth applied;
  applied.failed_cores = {3};
  TopologyHealth probed;
  probed.failed_cores = {3};
  EXPECT_FALSE(HealthMonitor::AddsFailures(probed, applied));
  probed.failed_cores.push_back(5);
  EXPECT_TRUE(HealthMonitor::AddsFailures(probed, applied));
  probed.failed_cores = {3};
  probed.failed_links = {{0, 1}};
  EXPECT_TRUE(HealthMonitor::AddsFailures(probed, applied));

  const TopologyHealth merged = HealthMonitor::Merge(applied, probed);
  EXPECT_EQ(merged.failed_cores, (std::vector<int>{3}));
  EXPECT_EQ(merged.failed_links, (std::vector<std::pair<int, int>>{{0, 1}}));
}

TEST(ServeHealthMonitorTest, FiresOnceUntilHealthIsApplied) {
  std::atomic<int> calls{0};
  TopologyHealth down;
  down.failed_cores = {2};
  HealthMonitor monitor(
      /*poll_seconds=*/100.0, [&] { return down; },
      [&](const TopologyHealth& merged) {
        EXPECT_EQ(merged.failed_cores, std::vector<int>{2});
        ++calls;
      });
  monitor.Start();
  monitor.NotifySuspicion();  // Immediate probe instead of the 100s timer.
  ASSERT_TRUE(WaitFor([&] { return calls.load() >= 1; }, 5.0));

  // Once the failover applied the mask, the same failure is quiet.
  monitor.SetAppliedHealth(down);
  monitor.NotifySuspicion();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(calls.load(), 1);
  monitor.Stop();
}

}  // namespace
}  // namespace serve
}  // namespace t10
