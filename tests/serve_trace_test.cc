// End-to-end observability of the serving runtime: request-scoped span
// trees (admission -> queue wait -> execute attempts -> audit -> response),
// flow links across failover requeues, the flight-recorder dump a chaos
// core-kill produces (with the full failover event sequence in order), and
// the per-plan-signature timing sidecar.

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/ir/builder.h"
#include "src/obs/journal.h"
#include "src/obs/plan_timings.h"
#include "src/obs/span.h"
#include "src/serve/server.h"
#include "src/sim/trace.h"

namespace t10 {
namespace serve {
namespace {

Graph SmallModel() {
  Graph g("serve-small");
  g.Add(MatMulOp("fc1", 8, 16, 8, DataType::kF32, "x", "w1", "h1"));
  g.Add(ElementwiseOp("relu", {8, 8}, DataType::kF32, "h1", "h2"));
  g.Add(MatMulOp("fc2", 8, 8, 8, DataType::kF32, "h2", "w2", "y"));
  g.MarkWeight("w1");
  g.MarkWeight("w2");
  return g;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Index of the first journal event with this name at or after `from`, or -1.
int IndexOf(const std::vector<obs::Event>& events, const std::string& name, int from = 0) {
  for (int i = from; i < static_cast<int>(events.size()); ++i) {
    if (events[static_cast<std::size_t>(i)].event == name) {
      return i;
    }
  }
  return -1;
}

TEST(ServeTraceTest, EveryRequestGetsAFullSpanTree) {
  const Graph graph = SmallModel();
  obs::Tracer tracer;
  obs::EventJournal journal;
  ServerOptions options;
  options.num_workers = 2;
  options.health_poll_seconds = 0.002;
  options.tracer = &tracer;
  options.journal = &journal;
  Server server(ChipSpec::ScaledIpu(8), graph, options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kRequests = 6;
  std::set<std::int64_t> ids;
  for (int i = 0; i < kRequests; ++i) {
    Request request;
    request.op_slot = i % server.num_op_slots();
    request.input_seed = static_cast<std::uint64_t>(i);
    StatusOr<std::int64_t> id = server.Submit(request);
    ASSERT_TRUE(id.ok());
    ids.insert(*id);
  }
  server.WaitIdle();
  ASSERT_EQ(server.TakeResponses().size(), static_cast<std::size_t>(kRequests));
  EXPECT_TRUE(server.Shutdown().ok());

  // Per trace id: the full request lifecycle, each stage at least once
  // ("attempt"/"exec.steps" can legitimately repeat on retries).
  std::map<std::uint64_t, std::set<std::string>> by_trace;
  for (const obs::SpanRecord& span : tracer.FinishedSpans()) {
    by_trace[span.trace_id].insert(span.name);
  }
  for (const std::int64_t id : ids) {
    const auto it = by_trace.find(static_cast<std::uint64_t>(id));
    ASSERT_NE(it, by_trace.end()) << "no spans for request " << id;
    for (const char* stage :
         {"admit", "queue.wait", "execute", "attempt", "exec.steps", "audit", "respond"}) {
      EXPECT_EQ(it->second.count(stage), 1u) << "request " << id << " missing " << stage;
    }
  }
  EXPECT_EQ(tracer.num_open(), 0);

  // Executor step groups live on a worker lane, children of the attempt.
  bool exec_lane_seen = false;
  for (const obs::SpanRecord& span : tracer.FinishedSpans()) {
    if (span.name == "exec.steps") {
      EXPECT_EQ(span.track.rfind("exec.w", 0), 0u) << span.track;
      EXPECT_NE(span.parent_id, 0u);
      exec_lane_seen = true;
    }
  }
  EXPECT_TRUE(exec_lane_seen);

  // The journal saw the lifecycle events.
  const std::vector<obs::Event> events = journal.Snapshot();
  EXPECT_GE(IndexOf(events, "server.start"), 0);
  EXPECT_GE(IndexOf(events, "request.admitted"), 0);
  EXPECT_GE(IndexOf(events, "request.response"), 0);
}

TEST(ServeTraceTest, ChaosKillProducesFlightRecorderAndFlowLinkedRequeue) {
  const Graph graph = SmallModel();
  const ChipSpec chip = ChipSpec::ScaledIpu(8);
  const std::string dump_path = ::testing::TempDir() + "/serve_trace_fr." +
                                std::to_string(::getpid()) + ".json";

  // Whether a request is caught mid-execution by the failover (and therefore
  // re-queued) is a genuine scheduling race: workers popped during the drain
  // deliberately wait out the replan and run on the NEW epoch. Each attempt
  // below asserts the invariants that must hold on every failover (event
  // order, flight-recorder dump, exactly one epoch bump); the flow-link
  // contract is asserted on the first attempt whose kill lands mid-backlog.
  bool requeue_observed = false;
  constexpr int kAttempts = 10;
  for (int attempt = 0; attempt < kAttempts && !requeue_observed; ++attempt) {
    obs::Tracer tracer;
    obs::EventJournal journal;
    obs::PlanTimings plan_timings;
    std::remove(dump_path.c_str());

    ServerOptions options;
    options.num_workers = 2;
    // Huge poll interval: only the KillCore suspicion (and worker trips over
    // the dead core) can drive the failover, never a background probe.
    options.health_poll_seconds = 60.0;
    options.retry_backoff_base_seconds = 0.0;
    options.tracer = &tracer;
    options.journal = &journal;
    options.plan_timings = &plan_timings;
    options.flight_recorder_path = dump_path;
    Server server(chip, graph, options);
    ASSERT_TRUE(server.Start().ok());

    // Warm epoch 0 with a couple of requests.
    for (int i = 0; i < 2; ++i) {
      Request request;
      request.op_slot = i % server.num_op_slots();
      request.input_seed = static_cast<std::uint64_t>(i);
      ASSERT_TRUE(server.Submit(request).ok());
    }
    server.WaitIdle();

    // Build a backlog, then kill into it: with 16 queued requests and 2
    // workers the kill usually lands while a request is executing on the
    // dead epoch-0 plan, which fails kUnavailable and re-queues.
    std::int64_t accepted = 0;
    for (int i = 0; i < 16; ++i) {
      Request request;
      request.op_slot = i % server.num_op_slots();
      request.input_seed = 100 + static_cast<std::uint64_t>(i);
      if (server.Submit(request).ok()) {
        ++accepted;
      }
    }
    ASSERT_GE(accepted, 8);
    server.KillCore(chip.num_cores - 1);
    server.WaitIdle();
    // A couple of post-failover requests guarantee epoch-1 plan timings even
    // when the whole backlog raced ahead of the swap.
    for (int i = 0; i < 2; ++i) {
      Request request;
      request.input_seed = 200 + static_cast<std::uint64_t>(i);
      ASSERT_TRUE(server.Submit(request).ok());
    }
    server.WaitIdle();
    const std::vector<Response> responses = server.TakeResponses();
    const ServerStats stats = server.stats();
    EXPECT_TRUE(server.Shutdown().ok());

    // Invariants of every attempt: exactly one failover, clean audits.
    ASSERT_EQ(stats.failovers, 1);
    for (const Response& response : responses) {
      if (response.status.ok()) {
        EXPECT_TRUE(response.bit_identical);
      }
    }

    // Journal: the failover sequence, in causal order.
    const std::vector<obs::Event> events = journal.Snapshot();
    const int probe = IndexOf(events, "health.probe");
    ASSERT_GE(probe, 0);
    const int detected = IndexOf(events, "failover.detected", probe);
    ASSERT_GE(detected, 0);
    const int drain = IndexOf(events, "failover.drain", detected);
    ASSERT_GE(drain, 0);
    const int replan = IndexOf(events, "failover.replan", drain);
    ASSERT_GE(replan, 0);
    const int verify_gate = IndexOf(events, "failover.verify_gate", replan);
    ASSERT_GE(verify_gate, 0);
    const int hot_swap = IndexOf(events, "failover.hot_swap", verify_gate);
    ASSERT_GE(hot_swap, 0);
    EXPECT_EQ(events[static_cast<std::size_t>(hot_swap)].plan_epoch, 1);

    // Flight recorder: the dump exists and retains the same failover history.
    const std::string dump = ReadFile(dump_path);
    ASSERT_FALSE(dump.empty()) << "no flight-recorder dump at " << dump_path;
    for (const char* event : {"health.probe", "failover.detected", "failover.drain",
                              "failover.replan", "failover.verify_gate", "failover.hot_swap"}) {
      EXPECT_NE(dump.find(event), std::string::npos) << "dump missing " << event;
    }
    std::remove(dump_path.c_str());

    // Plan timings: epoch 1 always observed execution post-swap; epoch 0 via
    // the warm-up requests.
    EXPECT_GT(plan_timings.num_cells(), 0);
    EXPECT_GT(plan_timings.total_count(), 0);
    std::set<int> epochs;
    {
      std::istringstream lines(plan_timings.ToJson());
      std::string line;
      while (std::getline(lines, line)) {
        const auto pos = line.find("\"plan_epoch\": ");
        if (pos != std::string::npos) {
          epochs.insert(std::atoi(line.c_str() + pos + 14));
        }
      }
    }
    EXPECT_EQ(epochs.count(0), 1u);
    EXPECT_EQ(epochs.count(1), 1u);

    if (stats.requeued < 1) {
      continue;  // Kill won the race against the backlog: try again.
    }
    requeue_observed = true;
    EXPECT_GE(IndexOf(events, "request.requeued"), 0);

    // Spans: the requeued request's interrupted execute emits a flow id that
    // a later queue.wait receives — the arrow linking the two epochs.
    std::map<std::uint64_t, int> flow_out_ids;
    std::map<std::uint64_t, int> flow_in_ids;
    for (const obs::SpanRecord& span : tracer.FinishedSpans()) {
      if (span.flow_out != 0) {
        ++flow_out_ids[span.flow_out];
        EXPECT_EQ(span.name, "execute");
      }
      if (span.flow_in != 0) {
        ++flow_in_ids[span.flow_in];
        EXPECT_EQ(span.name, "queue.wait");
      }
    }
    ASSERT_FALSE(flow_out_ids.empty());
    bool linked = false;
    for (const auto& [id, count] : flow_out_ids) {
      if (flow_in_ids.count(id) > 0) {
        linked = true;
      }
    }
    EXPECT_TRUE(linked) << "no flow id appears on both an execute and a queue.wait span";

    // The Perfetto export carries the arrows as "s"/"f" events.
    TraceWriter writer;
    AppendTracer(tracer, writer);
    const std::string json = writer.ToJson();
    EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos);
  }
  EXPECT_TRUE(requeue_observed)
      << "no attempt out of " << kAttempts << " re-queued a request across the failover";
}

TEST(ServeTraceTest, UnsurvivableFailureDumpsParkEvent) {
  const Graph graph = SmallModel();
  obs::EventJournal journal;
  const std::string dump_path = ::testing::TempDir() + "/serve_trace_park.json";
  std::remove(dump_path.c_str());

  ServerOptions options;
  options.num_workers = 2;
  options.health_poll_seconds = 0.002;
  options.journal = &journal;
  options.flight_recorder_path = dump_path;
  const ChipSpec chip = ChipSpec::ScaledIpu(4);
  Server server(chip, graph, options);
  ASSERT_TRUE(server.Start().ok());
  for (int core = 0; core < chip.num_cores; ++core) {
    server.KillCore(core);
  }
  const auto deadline =
      Clock::now() + std::chrono::duration<double>(20.0);
  while (server.state() != ServerState::kFailed && Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(server.state(), ServerState::kFailed);
  EXPECT_FALSE(server.Shutdown().ok());

  EXPECT_GE(IndexOf(journal.Snapshot(), "failover.park_failed"), 0);
  const std::string dump = ReadFile(dump_path);
  ASSERT_FALSE(dump.empty());
  EXPECT_NE(dump.find("failover.park_failed"), std::string::npos);
  EXPECT_NE(dump.find("replan failed"), std::string::npos);
  std::remove(dump_path.c_str());
}

TEST(ServeTraceTest, TracingOffCostsNothingVisible) {
  // With no tracer/journal configured the server serves normally and no
  // observability artifact appears.
  const Graph graph = SmallModel();
  ServerOptions options;
  options.num_workers = 2;
  options.health_poll_seconds = 0.002;
  Server server(ChipSpec::ScaledIpu(8), graph, options);
  ASSERT_TRUE(server.Start().ok());
  Request request;
  request.input_seed = 5;
  ASSERT_TRUE(server.Submit(request).ok());
  server.WaitIdle();
  const std::vector<Response> responses = server.TakeResponses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(responses[0].status.ok());
  EXPECT_TRUE(server.Shutdown().ok());
}

}  // namespace
}  // namespace serve
}  // namespace t10
