#include "src/sim/local_memory.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace t10 {
namespace {

TEST(LocalMemoryTest, AllocateAndFree) {
  LocalMemory mem(1024);
  auto a = mem.Allocate(100);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, 0);
  EXPECT_EQ(mem.used_bytes(), 104);  // 8-byte aligned.
  mem.Free(*a);
  EXPECT_EQ(mem.used_bytes(), 0);
  EXPECT_EQ(mem.free_bytes(), 1024);
}

TEST(LocalMemoryTest, ExhaustionReturnsNullopt) {
  LocalMemory mem(256);
  auto a = mem.Allocate(200);
  ASSERT_TRUE(a.has_value());
  EXPECT_FALSE(mem.Allocate(100).has_value());
  // Smaller request still fits in the tail.
  EXPECT_TRUE(mem.Allocate(48).has_value());
}

TEST(LocalMemoryTest, CoalescesAdjacentFreeBlocks) {
  LocalMemory mem(300);
  auto a = mem.Allocate(96);
  auto b = mem.Allocate(96);
  auto c = mem.Allocate(96);
  ASSERT_TRUE(a && b && c);
  // Free middle then neighbours; after all frees one 288-byte region remains.
  mem.Free(*b);
  EXPECT_FALSE(mem.Allocate(200).has_value());  // Fragmented.
  mem.Free(*a);
  mem.Free(*c);
  EXPECT_EQ(mem.LargestFreeBlock(), 300);
  EXPECT_TRUE(mem.Allocate(296).has_value());
}

TEST(LocalMemoryTest, FirstFitReusesEarliestHole) {
  LocalMemory mem(1024);
  auto a = mem.Allocate(128);
  auto b = mem.Allocate(128);
  (void)b;
  mem.Free(*a);
  auto c = mem.Allocate(64);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(*c, 0);  // Fills the first hole.
}

TEST(LocalMemoryDeathTest, DoubleFree) {
  LocalMemory mem(128);
  auto a = mem.Allocate(64);
  mem.Free(*a);
  EXPECT_DEATH(mem.Free(*a), "unallocated");
}

// Randomized stress: allocations never overlap and accounting stays exact.
TEST(LocalMemoryTest, RandomizedStress) {
  LocalMemory mem(64 * 1024);
  Rng rng(42);
  std::vector<std::pair<std::int64_t, std::int64_t>> live;  // offset, size.
  for (int iter = 0; iter < 2000; ++iter) {
    if (live.empty() || rng.Uniform(0, 1) == 0) {
      std::int64_t request = rng.Uniform(1, 2048);
      auto offset = mem.Allocate(request);
      if (offset.has_value()) {
        for (const auto& [o, s] : live) {
          EXPECT_TRUE(*offset + request <= o || o + s <= *offset)
              << "overlap at iteration " << iter;
        }
        live.emplace_back(*offset, request);
      }
    } else {
      std::size_t pick = rng.Index(live.size());
      mem.Free(live[pick].first);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
  for (const auto& [o, s] : live) {
    mem.Free(o);
  }
  EXPECT_EQ(mem.used_bytes(), 0);
  EXPECT_EQ(mem.LargestFreeBlock(), 64 * 1024);
}

}  // namespace
}  // namespace t10
