#include "src/sim/machine.h"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "src/fault/fault_plan.h"
#include "src/obs/metrics.h"
#include "src/sim/trace.h"

namespace t10 {
namespace {

ChipSpec TinyChip(int cores, std::int64_t memory = 64 * 1024) {
  ChipSpec spec = ChipSpec::IpuMk2();
  spec.name = "tiny";
  spec.num_cores = cores;
  spec.cores_per_chip = cores;
  spec.core_memory_bytes = memory;
  return spec;
}

TEST(MachineTest, AllocateWriteRead) {
  Machine machine(TinyChip(2));
  BufferHandle h = *machine.Allocate(0, 16);
  float values[4] = {1.0f, 2.0f, 3.0f, 4.0f};
  std::memcpy(machine.Data(h), values, sizeof(values));
  float back[4];
  std::memcpy(back, machine.Data(h), sizeof(back));
  EXPECT_EQ(back[2], 3.0f);
  machine.Free(h);
  EXPECT_EQ(machine.memory(0).used_bytes(), 0);
}

TEST(MachineTest, RotateRingMovesDataDownstream) {
  Machine machine(TinyChip(4));
  std::vector<BufferHandle> ring;
  for (int core = 0; core < 4; ++core) {
    BufferHandle h = *machine.Allocate(core, sizeof(int));
    int value = core * 10;
    std::memcpy(machine.Data(h), &value, sizeof(value));
    ring.push_back(h);
  }
  machine.RotateRing(ring);
  // After one rotation, core i holds what core i-1 held.
  for (int core = 0; core < 4; ++core) {
    int value = -1;
    std::memcpy(&value, machine.Data(ring[core]), sizeof(value));
    EXPECT_EQ(value, ((core + 3) % 4) * 10);
  }
  // Four rotations return to the start.
  for (int i = 0; i < 3; ++i) {
    machine.RotateRing(ring);
  }
  for (int core = 0; core < 4; ++core) {
    int value = -1;
    std::memcpy(&value, machine.Data(ring[core]), sizeof(value));
    EXPECT_EQ(value, core * 10);
  }
}

TEST(MachineTest, RotateLargerThanShiftBufferUsesChunks) {
  ChipSpec spec = TinyChip(3, 256 * 1024);
  spec.shift_buffer_bytes = 64;  // Force many chunked iterations.
  Machine machine(spec);
  const std::int64_t bytes = 1000;  // Not a multiple of the chunk size.
  std::vector<BufferHandle> ring;
  for (int core = 0; core < 3; ++core) {
    BufferHandle h = *machine.Allocate(core, bytes);
    for (std::int64_t i = 0; i < bytes; ++i) {
      machine.Data(h)[i] = static_cast<std::byte>((core * 37 + i) % 251);
    }
    ring.push_back(h);
  }
  machine.RotateRing(ring);
  for (int core = 0; core < 3; ++core) {
    int src = (core + 2) % 3;
    for (std::int64_t i = 0; i < bytes; ++i) {
      ASSERT_EQ(machine.Data(ring[core])[i], static_cast<std::byte>((src * 37 + i) % 251))
          << "core " << core << " byte " << i;
    }
  }
  // Every ring member sent exactly `bytes`.
  for (int core = 0; core < 3; ++core) {
    EXPECT_EQ(machine.bytes_sent(core), bytes);
  }
}

TEST(MachineTest, CopyAccountsCrossCoreTrafficOnly) {
  Machine machine(TinyChip(2));
  BufferHandle a = *machine.Allocate(0, 64);
  BufferHandle b = *machine.Allocate(1, 64);
  BufferHandle c = *machine.Allocate(0, 64);
  std::memset(machine.Data(a), 7, 64);
  machine.Copy(a, b);
  machine.Copy(a, c);  // Same-core copy: no link traffic.
  EXPECT_EQ(machine.Data(b)[63], static_cast<std::byte>(7));
  EXPECT_EQ(machine.bytes_sent(0), 64);
  EXPECT_EQ(machine.bytes_sent(1), 0);
  EXPECT_EQ(machine.total_bytes_sent(), 64);
  machine.ResetTrafficCounters();
  EXPECT_EQ(machine.total_bytes_sent(), 0);
}

TEST(MachineTest, SingleElementRingIsNoOp) {
  Machine machine(TinyChip(2));
  BufferHandle h = *machine.Allocate(0, 8);
  std::memset(machine.Data(h), 9, 8);
  machine.RotateRing({h});
  EXPECT_EQ(machine.Data(h)[0], static_cast<std::byte>(9));
  EXPECT_EQ(machine.total_bytes_sent(), 0);
}

TEST(MachineTest, OverCapacityAllocationIsResourceExhausted) {
  Machine machine(TinyChip(1, 1024));
  StatusOr<BufferHandle> handle = machine.Allocate(0, 4096);
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(handle.status().message().find("out of scratchpad"), std::string::npos)
      << handle.status().ToString();
  // The failed allocation must not leak partial state.
  EXPECT_EQ(machine.memory(0).used_bytes(), 0);
}

TEST(MachineTest, ScratchpadHighWaterMarkSurvivesFrees) {
  Machine machine(TinyChip(1));
  BufferHandle a = *machine.Allocate(0, 1000);
  BufferHandle b = *machine.Allocate(0, 2000);
  machine.Free(a);
  machine.Free(b);
  EXPECT_EQ(machine.memory(0).used_bytes(), 0);
  // Peak reflects the moment both were live (sizes round up to 8 bytes).
  EXPECT_GE(machine.peak_scratchpad_bytes(), 3000);
  EXPECT_LE(machine.peak_scratchpad_bytes(), 3016);
}

TEST(MachineTest, AttachedTraceRecordsPerCoreCounterLanes) {
  Machine machine(TinyChip(3));
  TraceWriter trace;
  machine.AttachTrace(&trace);
  std::vector<BufferHandle> ring;
  for (int core = 0; core < 3; ++core) {
    ring.push_back(*machine.Allocate(core, 64));
  }
  machine.RotateRing(ring);
  machine.Copy(ring[0], ring[1]);
  machine.AttachTrace(nullptr);
  ASSERT_FALSE(trace.counters().empty());
  bool saw_core0 = false;
  bool saw_core2 = false;
  for (const TraceCounterSample& sample : trace.counters()) {
    if (sample.track == "sim.core0.bytes_sent") {
      saw_core0 = true;
    }
    if (sample.track == "sim.core2.bytes_sent") {
      saw_core2 = true;
    }
  }
  EXPECT_TRUE(saw_core0);
  EXPECT_TRUE(saw_core2);
  // The trace serializes with counter ("C") events.
  EXPECT_NE(trace.ToJson().find("\"ph\": \"C\""), std::string::npos);
}

// --- Fault injection + reliable-transfer layer. ---

fault::FaultSpec BurstSpec(std::int64_t burst) {
  fault::FaultSpec spec;
  spec.burst_corrupt = burst;  // First `burst` transfers corrupted, exactly.
  return spec;
}

TEST(MachineFaultTest, RawCopySuffersCorruptionSilently) {
  Machine machine(TinyChip(2));
  fault::FaultInjector injector(BurstSpec(1));
  machine.AttachFaults(&injector);
  BufferHandle src = *machine.Allocate(0, 64);
  BufferHandle dst = *machine.Allocate(1, 64);
  std::memset(machine.Data(src), 0x5a, 64);
  machine.Copy(src, dst);
  // Burst corruption XORs byte 0 with 0x01; the rest arrives intact.
  EXPECT_EQ(machine.Data(dst)[0], static_cast<std::byte>(0x5a ^ 0x01));
  EXPECT_EQ(machine.Data(dst)[1], static_cast<std::byte>(0x5a));
  EXPECT_EQ(machine.fault_retries(), 0);
  EXPECT_EQ(injector.injected(), 1);
}

TEST(MachineFaultTest, CopyReliableRetriesUntilChecksumMatches) {
  Machine machine(TinyChip(2));
  fault::FaultInjector injector(BurstSpec(2));
  machine.AttachFaults(&injector);
  BufferHandle src = *machine.Allocate(0, 64);
  BufferHandle dst = *machine.Allocate(1, 64);
  for (int i = 0; i < 64; ++i) {
    machine.Data(src)[i] = static_cast<std::byte>(i);
  }
  RetryPolicy policy;
  policy.max_retries = 4;
  Status status = machine.CopyReliable(src, dst, policy);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(std::memcmp(machine.Data(src), machine.Data(dst), 64), 0);
  // Two corrupted attempts, then a clean one; every attempt is real traffic.
  EXPECT_EQ(machine.fault_retries(), 2);
  EXPECT_EQ(machine.bytes_sent(0), 3 * 64);
  // Exponential backoff: 1e-6 * (2^0 + 2^1).
  EXPECT_DOUBLE_EQ(machine.fault_penalty_seconds(), 3e-6);
}

TEST(MachineFaultTest, CopyReliableExhaustionIsDataLoss) {
  Machine machine(TinyChip(2));
  fault::FaultInjector injector(BurstSpec(100));
  machine.AttachFaults(&injector);
  BufferHandle src = *machine.Allocate(0, 32);
  BufferHandle dst = *machine.Allocate(1, 32);
  RetryPolicy policy;
  policy.max_retries = 2;
  Status status = machine.CopyReliable(src, dst, policy);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_NE(status.message().find("after 3 attempts"), std::string::npos) << status.ToString();
}

TEST(MachineFaultTest, RotateRingReliableRecoversBitIdentically) {
  Machine machine(TinyChip(3));
  fault::FaultInjector injector(BurstSpec(2));
  machine.AttachFaults(&injector);
  std::vector<BufferHandle> ring;
  for (int core = 0; core < 3; ++core) {
    BufferHandle h = *machine.Allocate(core, 16);
    std::memset(machine.Data(h), core + 1, 16);
    ring.push_back(h);
  }
  Status status = machine.RotateRingReliable(ring);
  ASSERT_TRUE(status.ok()) << status.ToString();
  for (int core = 0; core < 3; ++core) {
    EXPECT_EQ(machine.Data(ring[core])[7], static_cast<std::byte>((core + 2) % 3 + 1))
        << "core " << core;
  }
  EXPECT_EQ(machine.fault_retries(), 2);
}

TEST(MachineFaultTest, StalledTransferArrivesIntactButLate) {
  Machine machine(TinyChip(2));
  fault::FaultSpec spec;
  spec.stall_rate = 1.0;
  spec.stall_penalty_seconds = 2e-6;
  fault::FaultInjector injector(spec);
  machine.AttachFaults(&injector);
  BufferHandle src = *machine.Allocate(0, 64);
  BufferHandle dst = *machine.Allocate(1, 64);
  std::memset(machine.Data(src), 3, 64);
  machine.Copy(src, dst);
  EXPECT_EQ(std::memcmp(machine.Data(src), machine.Data(dst), 64), 0);
  EXPECT_DOUBLE_EQ(machine.fault_penalty_seconds(), 2e-6);
}

TEST(MachineFaultTest, PersistentCoreDownBlocksEverything) {
  Machine machine(TinyChip(3));
  fault::FaultSpec spec;
  spec.failed_cores.push_back(1);
  fault::FaultInjector injector(spec);
  machine.AttachFaults(&injector);

  StatusOr<BufferHandle> on_down_core = machine.Allocate(1, 16);
  ASSERT_FALSE(on_down_core.ok());
  EXPECT_EQ(on_down_core.status().code(), StatusCode::kUnavailable);

  // Raw transfers into the downed core vanish without traffic. The buffer on
  // the downed core is allocated with faults detached — it models state that
  // existed before the failure.
  BufferHandle a = *machine.Allocate(0, 16);
  BufferHandle c = *machine.Allocate(2, 16);
  std::memset(machine.Data(a), 9, 16);
  std::memset(machine.Data(c), 0, 16);
  machine.AttachFaults(nullptr);
  BufferHandle b = *machine.Allocate(1, 16);
  std::memset(machine.Data(b), 0, 16);
  machine.AttachFaults(&injector);

  machine.Copy(a, b);
  EXPECT_EQ(machine.Data(b)[0], static_cast<std::byte>(0));  // Nothing arrived.
  EXPECT_EQ(machine.total_bytes_sent(), 0);

  Status reliable = machine.CopyReliable(a, b);
  ASSERT_FALSE(reliable.ok());
  EXPECT_EQ(reliable.code(), StatusCode::kUnavailable);

  Status ring = machine.RotateRingReliable({a, b, c});
  ASSERT_FALSE(ring.ok());
  EXPECT_EQ(ring.code(), StatusCode::kUnavailable);
  EXPECT_EQ(machine.total_bytes_sent(), 0);  // Failed before moving data.
}

TEST(MachineFaultTest, DownedLinkIsDirectional) {
  Machine machine(TinyChip(2));
  fault::FaultSpec spec;
  spec.failed_links.emplace_back(0, 1);
  fault::FaultInjector injector(spec);
  machine.AttachFaults(&injector);
  BufferHandle a = *machine.Allocate(0, 16);
  BufferHandle b = *machine.Allocate(1, 16);
  std::memset(machine.Data(a), 1, 16);
  std::memset(machine.Data(b), 2, 16);
  EXPECT_EQ(machine.CopyReliable(a, b).code(), StatusCode::kUnavailable);
  Status reverse = machine.CopyReliable(b, a);
  EXPECT_TRUE(reverse.ok()) << reverse.ToString();
  EXPECT_EQ(machine.Data(a)[0], static_cast<std::byte>(2));
}

TEST(MachineTest, ReleaseStorageFreesEveryCoreAndRefusesNewAllocations) {
  // Elastic-recovery hook: a permanently lost chip's machine gives its
  // simulated scratchpads back in one shot and refuses to allocate again.
  Machine machine(TinyChip(2));
  BufferHandle a = *machine.Allocate(0, 256);
  BufferHandle b = *machine.Allocate(1, 512);
  (void)a;
  (void)b;
  EXPECT_FALSE(machine.storage_released());
  const std::int64_t released = machine.ReleaseStorage();
  EXPECT_GE(released, 256 + 512);
  EXPECT_TRUE(machine.storage_released());
  StatusOr<BufferHandle> after = machine.Allocate(0, 16);
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kUnavailable);
  // Idempotent: the second release has nothing left to give back.
  EXPECT_EQ(machine.ReleaseStorage(), 0);
}

TEST(MachineTest, PublishMetricsRecordsTrafficHistogram) {
  obs::MetricsRegistry registry;
  Machine machine(TinyChip(2));
  BufferHandle src = *machine.Allocate(0, 128);
  BufferHandle dst = *machine.Allocate(1, 128);
  machine.Copy(src, dst);
  machine.PublishMetrics(registry);
  EXPECT_EQ(registry.GetHistogram("sim.machine.per_core_bytes_sent").count(), 1);
  EXPECT_DOUBLE_EQ(registry.GetHistogram("sim.machine.per_core_bytes_sent").sum(), 128.0);
  EXPECT_GE(registry.GetGauge("sim.machine.scratchpad_peak_bytes").value(), 128.0);
}

}  // namespace
}  // namespace t10
