#include "src/sim/trace.h"

#include <gtest/gtest.h>

#include <fstream>

#include "src/core/trace_export.h"
#include "src/ir/builder.h"

namespace t10 {
namespace {

TEST(TraceWriterTest, EmitsValidEventObjects) {
  TraceWriter trace;
  trace.Add("op1 compute", "compute", 0.0, 10e-6);
  trace.Add("op1 exchange", "exchange", 0.0, 4e-6);
  trace.Add("op2 compute", "compute", 10e-6, 7e-6);
  std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"name\": \"op1 compute\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 10"), std::string::npos);
  // Lane metadata present with stable tids.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"compute\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"exchange\""), std::string::npos);
}

TEST(TraceWriterTest, EscapesQuotes) {
  TraceWriter trace;
  trace.Add("weird\"name", "lane", 0.0, 1e-6);
  std::string json = trace.ToJson();
  EXPECT_NE(json.find("weird\\\"name"), std::string::npos);
}

TEST(TraceWriterTest, EmptyTraceIsValidJson) {
  TraceWriter trace;
  EXPECT_EQ(trace.ToJson(), "[\n]\n");
}

TEST(TraceWriterTest, EmitsCounterEvents) {
  TraceWriter trace;
  trace.AddCounter("memory bytes/core", 0.0, 1024.0);
  trace.AddCounter("memory bytes/core", 5e-6, 2048.0);
  ASSERT_EQ(trace.counters().size(), 2u);
  std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"memory bytes/core\""), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"value\": 1024}"), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"value\": 2048}"), std::string::npos);
  // Timestamps are microseconds.
  EXPECT_NE(json.find("\"ts\": 5"), std::string::npos);
}

TEST(TraceWriterTest, MixedSpansAndCountersStayValidJson) {
  TraceWriter trace;
  trace.Add("op compute", "compute", 0.0, 1e-6);
  trace.AddCounter("link utilisation", 0.0, 0.8);
  std::string json = trace.ToJson();
  // Every event object is comma-separated: no ",]" or "}{" artifacts.
  EXPECT_EQ(json.find(",]"), std::string::npos);
  EXPECT_EQ(json.find("}{"), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
}

TEST(TraceExportTest, CompiledModelProducesOrderedSpans) {
  ChipSpec chip = ChipSpec::IpuMk2();
  chip.num_cores = 64;
  chip.cores_per_chip = 64;
  Compiler compiler(chip);
  Graph g("mlp");
  g.Add(MatMulOp("fc1", 32, 256, 512, DataType::kF16, "x", "w1", "h1"));
  g.Add(MatMulOp("fc2", 32, 512, 256, DataType::kF16, "h1", "w2", "y"));
  g.MarkWeight("w1");
  g.MarkWeight("w2");
  CompiledModel model = compiler.Compile(g);
  ASSERT_TRUE(model.fits);
  TraceWriter trace = TraceCompiledModel(model, g);
  ASSERT_GE(trace.spans().size(), 2u);
  // Spans are in non-decreasing start order, and the compute spans of the
  // two ops do not overlap.
  double fc1_end = 0.0;
  double fc2_start = -1.0;
  double prev_start = 0.0;
  for (const TraceSpan& span : trace.spans()) {
    EXPECT_GE(span.start_seconds, prev_start);
    prev_start = span.start_seconds;
    if (span.name.find("fc1 compute") != std::string::npos) {
      fc1_end = span.start_seconds + span.duration_seconds;
    }
    if (span.name.find("fc2 compute") != std::string::npos) {
      fc2_start = span.start_seconds;
    }
  }
  ASSERT_GE(fc2_start, 0.0);
  EXPECT_GE(fc2_start, fc1_end - 1e-12);
}

TEST(TraceExportTest, CompiledModelEmitsCounterTracks) {
  ChipSpec chip = ChipSpec::IpuMk2();
  chip.num_cores = 64;
  chip.cores_per_chip = 64;
  Compiler compiler(chip);
  Graph g("mlp");
  g.Add(MatMulOp("fc1", 32, 256, 512, DataType::kF16, "x", "w1", "h1"));
  g.Add(MatMulOp("fc2", 32, 512, 256, DataType::kF16, "h1", "w2", "y"));
  g.MarkWeight("w1");
  g.MarkWeight("w2");
  CompiledModel model = compiler.Compile(g);
  ASSERT_TRUE(model.fits);
  TraceWriter trace = TraceCompiledModel(model, g, &chip);
  ASSERT_FALSE(trace.counters().empty());
  bool saw_memory = false;
  bool saw_traffic = false;
  bool saw_utilisation = false;
  for (const TraceCounterSample& sample : trace.counters()) {
    EXPECT_GE(sample.time_seconds, 0.0);
    if (sample.track == "memory bytes/core") {
      saw_memory = true;
      // Occupancy never exceeds the scratchpad.
      EXPECT_LE(sample.value, static_cast<double>(chip.core_memory_bytes));
    }
    if (sample.track == "link bytes/core (cumulative)") {
      saw_traffic = true;
      EXPECT_GE(sample.value, 0.0);
    }
    if (sample.track == "link utilisation") {
      saw_utilisation = true;
      EXPECT_GE(sample.value, 0.0);
      EXPECT_LE(sample.value, 1.0 + 1e-9);
    }
  }
  EXPECT_TRUE(saw_memory);
  EXPECT_TRUE(saw_traffic);
  EXPECT_TRUE(saw_utilisation);
  // Cumulative traffic is non-decreasing over time for the traffic track.
  double last_ts = -1.0;
  double last_value = -1.0;
  for (const TraceCounterSample& sample : trace.counters()) {
    if (sample.track != "link bytes/core (cumulative)") {
      continue;
    }
    EXPECT_GE(sample.time_seconds, last_ts);
    EXPECT_GE(sample.value, last_value);
    last_ts = sample.time_seconds;
    last_value = sample.value;
  }
}

TEST(TraceExportTest, WritesFile) {
  TraceWriter trace;
  trace.Add("x", "lane", 0.0, 1e-6);
  const std::string path = ::testing::TempDir() + "/t10_trace_test.json";
  EXPECT_TRUE(trace.WriteFile(path).ok());
  std::ifstream file(path);
  EXPECT_TRUE(file.good());
}

TEST(TraceExportTest, UnopenablePathIsInvalidArgument) {
  TraceWriter trace;
  trace.Add("x", "lane", 0.0, 1e-6);
  const Status written = trace.WriteFile("/dev/null/not-a-dir/trace.json");
  EXPECT_EQ(written.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace t10
