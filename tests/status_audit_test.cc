// CHECK-audit regression suite: every user-reachable failure in the
// simulator and core layers must come back as a recoverable Status with the
// documented code, never a process abort. Each case here corresponds to an
// entry point a CLI flag, model file, or serving request can reach.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/functional.h"
#include "src/fault/fault_plan.h"
#include "src/ir/builder.h"
#include "src/ir/parser.h"
#include "src/sim/machine.h"
#include "src/sim/trace.h"
#include "src/util/status.h"

namespace t10 {
namespace {

TEST(StatusAuditTest, MachineAllocateOutOfMemoryIsResourceExhausted) {
  const ChipSpec chip = ChipSpec::ScaledIpu(4);
  Machine machine(chip);
  StatusOr<BufferHandle> huge = machine.Allocate(0, chip.core_memory_bytes + 1);
  ASSERT_FALSE(huge.ok());
  EXPECT_EQ(huge.status().code(), StatusCode::kResourceExhausted);
  // The failed allocation must not leak partial state: a sane request on the
  // same core still succeeds.
  StatusOr<BufferHandle> small = machine.Allocate(0, 64);
  EXPECT_TRUE(small.ok()) << small.status().ToString();
}

TEST(StatusAuditTest, MachineAllocateOnDownedCoreIsUnavailable) {
  const ChipSpec chip = ChipSpec::ScaledIpu(4);
  fault::FaultSpec spec;
  fault::FaultInjector injector(spec);
  injector.KillCore(2);
  Machine machine(chip);
  machine.AttachFaults(&injector);
  StatusOr<BufferHandle> dead = machine.Allocate(2, 64);
  ASSERT_FALSE(dead.ok());
  EXPECT_EQ(dead.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(machine.Allocate(1, 64).ok());  // Survivors keep working.
}

TEST(StatusAuditTest, TraceWriteToUnopenablePathIsInvalidArgument) {
  TraceWriter writer;
  writer.Add("op", "lane", 0.0, 1.0);
  const Status status = writer.WriteFile("/nonexistent-dir/trace.json");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(StatusAuditTest, ModelParseFailuresAreInvalidArgument) {
  const std::vector<std::string> bad_models = {
      "not a model at all",
      "model m\nmatmul name=x m=abc k=2 n=2 a=a b=b c=c",
      "model m\nbogus_op name=x",
  };
  for (const std::string& text : bad_models) {
    StatusOr<Graph> parsed = TryParseModelText(text);
    ASSERT_FALSE(parsed.ok()) << text;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << text;
  }
}

TEST(StatusAuditTest, FaultSpecParseFailuresAreInvalidArgument) {
  const std::vector<std::string> bad_specs = {
      "bogus=1",
      "corrupt=2.0",      // Rate out of range.
      "core_down=-1",     // Negative core.
      "link_down=3",      // Missing dst in the pair.
      "corrupt=notanum",
  };
  for (const std::string& text : bad_specs) {
    StatusOr<fault::FaultSpec> spec = fault::ParseFaultSpec(text);
    ASSERT_FALSE(spec.ok()) << text;
    EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument) << text;
  }
}

TEST(StatusAuditTest, FunctionalExecutionPreconditionsAreInvalidArgument) {
  Operator op = MatMulOp("mm", 2, 6, 3, DataType::kF32, "A", "B", "C");
  auto plan = ExecutionPlan::Create(op, {2, 3, 1}, {{1, 3}, {2, 1}, {1, 1}});
  ASSERT_TRUE(plan.has_value());

  // Wrong input arity.
  std::vector<HostTensor> one_input = {
      RandomHostTensor(TensorShape(op.axes(), op.inputs()[0]), 1)};
  StatusOr<HostTensor> arity = TryExecutePlanFunctionally(*plan, one_input);
  ASSERT_FALSE(arity.ok());
  EXPECT_EQ(arity.status().code(), StatusCode::kInvalidArgument);

  // Right arity, wrong shape on the second operand.
  std::vector<HostTensor> bad_shape = {
      RandomHostTensor(TensorShape(op.axes(), op.inputs()[0]), 1),
      RandomHostTensor(TensorShape(op.axes(), op.inputs()[0]), 2)};
  StatusOr<HostTensor> shape = TryExecutePlanFunctionally(*plan, bad_shape);
  ASSERT_FALSE(shape.ok());
  EXPECT_EQ(shape.status().code(), StatusCode::kInvalidArgument);

  // Well-formed inputs still execute after the rejected calls.
  std::vector<HostTensor> good = {
      RandomHostTensor(TensorShape(op.axes(), op.inputs()[0]), 1),
      RandomHostTensor(TensorShape(op.axes(), op.inputs()[1]), 2)};
  StatusOr<HostTensor> ok = TryExecutePlanFunctionally(*plan, good);
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

}  // namespace
}  // namespace t10
