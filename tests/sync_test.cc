// Tests for the annotated sync primitives (src/util/sync.h): Mutex/MutexLock
// exclusion, CondVar explicit wait loops and timed waits, SharedMutex reader
// sharing and writer exclusion, and the lock-order deadlock detector — the
// death tests pin down the deterministic cycle abort with both conflicting
// acquisition stacks in the message.

#include "src/util/sync.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace t10 {
namespace {

TEST(MutexTest, SiteNameDefaultsToAnon) {
  Mutex anonymous;
  EXPECT_STREQ(anonymous.site(), "anon");
  Mutex named("test.named.mu");
  EXPECT_STREQ(named.site(), "test.named.mu");
}

TEST(MutexTest, MutexLockGuardsACounterAcrossThreads) {
  Mutex mu("test.counter.mu");
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  MutexLock lock(mu);
  EXPECT_EQ(counter, 4000);
}

TEST(MutexTest, TryLockReflectsContention) {
  Mutex mu("test.trylock.mu");
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();

  std::atomic<bool> held{false};
  std::atomic<bool> release{false};
  std::thread holder([&] {
    mu.Lock();
    held = true;
    while (!release) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    mu.Unlock();
  });
  while (!held) {
    std::this_thread::yield();
  }
  EXPECT_FALSE(mu.TryLock());
  release = true;
  holder.join();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(CondVarTest, ExplicitWaitLoopSeesTheNotification) {
  Mutex mu("test.cv.mu");
  CondVar cv;
  bool ready = false;
  bool observed = false;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) {
      cv.Wait(mu);
    }
    observed = true;
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  EXPECT_TRUE(observed);
}

TEST(CondVarTest, WaitForTimesOutWithoutANotification) {
  Mutex mu("test.cv_timeout.mu");
  CondVar cv;
  MutexLock lock(mu);
  EXPECT_EQ(cv.WaitFor(mu, std::chrono::milliseconds(5)), std::cv_status::timeout);
}

TEST(CondVarTest, WaitUntilWakesOnNotifyBeforeTheDeadline) {
  Mutex mu("test.cv_until.mu");
  CondVar cv;
  bool ready = false;
  std::thread notifier([&] {
    MutexLock lock(mu);
    ready = true;
    cv.NotifyAll();
  });
  {
    MutexLock lock(mu);
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!ready) {
      if (cv.WaitUntil(mu, deadline) == std::cv_status::timeout) {
        break;
      }
    }
    EXPECT_TRUE(ready);
  }
  notifier.join();
}

TEST(SharedMutexTest, ReadersShareTheLock) {
  SharedMutex mu("test.shared.mu");
  SharedReaderLock outer(mu);
  std::atomic<bool> entered{false};
  std::thread reader([&] {
    SharedReaderLock inner(mu);
    entered = true;
  });
  // The inner reader completes while `outer` is still held; if readers
  // excluded each other this join would deadlock.
  reader.join();
  EXPECT_TRUE(entered);
}

TEST(SharedMutexTest, WritersExcludeEachOther) {
  SharedMutex mu("test.shared_writer.mu");
  int value = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        SharedMutexLock lock(mu);
        ++value;
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  SharedReaderLock lock(mu);
  EXPECT_EQ(value, 4000);
}

TEST(SharedMutexTest, WriterWaitsForAnActiveReader) {
  SharedMutex mu("test.shared_rw.mu");
  std::atomic<bool> writer_done{false};
  mu.ReaderLock();
  std::thread writer([&] {
    SharedMutexLock lock(mu);
    writer_done = true;
  });
  // writer_done can only flip after ReaderUnlock below, so this never fails
  // spuriously; the sleep just gives a buggy writer the chance to sneak in.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(writer_done);
  mu.ReaderUnlock();
  writer.join();
  EXPECT_TRUE(writer_done);
}

// ---------------------------------------------------------------------------
// Lock-order deadlock detector.
// ---------------------------------------------------------------------------

class LockOrderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = LockOrderGraph::Enabled();
    LockOrderGraph::SetEnabled(true);
    LockOrderGraph::Global().TestOnlyReset();
  }
  void TearDown() override {
    LockOrderGraph::Global().TestOnlyReset();
    LockOrderGraph::SetEnabled(was_enabled_);
  }

 private:
  bool was_enabled_ = false;
};

using LockOrderDeathTest = LockOrderTest;

TEST_F(LockOrderTest, ConsistentOrderRecordsOneEdgeAndNeverAborts) {
  Mutex outer("test.order.outer");
  Mutex inner("test.order.inner");
  auto lock_in_order = [&] {
    for (int i = 0; i < 100; ++i) {
      MutexLock lock_outer(outer);
      MutexLock lock_inner(inner);
    }
  };
  std::thread t1(lock_in_order);
  std::thread t2(lock_in_order);
  t1.join();
  t2.join();
  EXPECT_EQ(LockOrderGraph::Global().num_edges(), 1);
  const std::string dot = LockOrderGraph::Global().DumpDot();
  EXPECT_NE(dot.find("digraph lock_order"), std::string::npos) << dot;
  EXPECT_NE(dot.find("\"test.order.outer\" -> \"test.order.inner\""), std::string::npos) << dot;
}

TEST_F(LockOrderTest, DisabledDetectionRecordsNothing) {
  LockOrderGraph::SetEnabled(false);
  Mutex a("test.disabled.a");
  Mutex b("test.disabled.b");
  {
    MutexLock lock_a(a);
    MutexLock lock_b(b);
  }
  EXPECT_EQ(LockOrderGraph::Global().num_edges(), 0);
}

TEST_F(LockOrderTest, TryLockIsNotAnOrderingEvent) {
  Mutex a("test.try_order.a");
  Mutex b("test.try_order.b");
  {
    MutexLock lock_a(a);
    ASSERT_TRUE(b.TryLock());
    b.Unlock();
  }
  EXPECT_EQ(LockOrderGraph::Global().num_edges(), 0);
}

TEST_F(LockOrderTest, CondVarWaitKeepsTheHeldStackBalanced) {
  Mutex mu("test.cv_order.mu");
  CondVar cv;
  {
    MutexLock lock(mu);
    EXPECT_EQ(cv.WaitFor(mu, std::chrono::milliseconds(1)), std::cv_status::timeout);
  }
  // The wait released and reacquired `mu` through the registry. If the held
  // stack leaked a stale entry, the pair below would record extra edges.
  Mutex a("test.cv_order.a");
  Mutex b("test.cv_order.b");
  {
    MutexLock lock_a(a);
    MutexLock lock_b(b);
  }
  EXPECT_EQ(LockOrderGraph::Global().num_edges(), 1);
}

TEST_F(LockOrderTest, DumpDotListsEveryRecordedEdge) {
  Mutex a("test.dot.a");
  Mutex b("test.dot.b");
  Mutex c("test.dot.c");
  {
    MutexLock lock_a(a);
    MutexLock lock_b(b);
    MutexLock lock_c(c);
  }
  // a->b, a->c, b->c.
  EXPECT_EQ(LockOrderGraph::Global().num_edges(), 3);
  const std::string dot = LockOrderGraph::Global().DumpDot();
  EXPECT_NE(dot.find("\"test.dot.a\" -> \"test.dot.b\""), std::string::npos) << dot;
  EXPECT_NE(dot.find("\"test.dot.a\" -> \"test.dot.c\""), std::string::npos) << dot;
  EXPECT_NE(dot.find("\"test.dot.b\" -> \"test.dot.c\""), std::string::npos) << dot;
}

TEST_F(LockOrderDeathTest, InvertedAcquisitionAbortsWithBothStacks) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex first("test.invert.first");
  Mutex second("test.invert.second");
  {
    MutexLock lock_first(first);
    MutexLock lock_second(second);  // Records first -> second.
  }
  // The inverted acquisition aborts on the Lock() call itself — no actual
  // deadlock interleaving required — and the message carries this thread's
  // stack and the stack that recorded the conflicting edge.
  EXPECT_DEATH(
      {
        MutexLock lock_second(second);
        MutexLock lock_first(first);
      },
      "t10-sync: lock-order cycle detected"
      ".*this thread:.*held \\[test\\.invert\\.second\\] acquiring 'test\\.invert\\.first'"
      ".*conflicting order:.*held \\[test\\.invert\\.first\\] acquiring 'test\\.invert\\.second'");
}

TEST_F(LockOrderDeathTest, SameSiteNestingAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Two distinct instances sharing one site: nothing constrains their
  // relative order, so nesting them is an order bug by definition.
  Mutex one("test.same_site.mu");
  Mutex two("test.same_site.mu");
  EXPECT_DEATH(
      {
        MutexLock lock_one(one);
        MutexLock lock_two(two);
      },
      "lock-order cycle detected.*same-site nesting");
}

TEST_F(LockOrderDeathTest, ThreeLockCycleAcrossThreadsAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex a("test.cycle3.a");
  Mutex b("test.cycle3.b");
  Mutex c("test.cycle3.c");
  // Record a -> b and b -> c on other threads; closing c -> a must abort
  // even though no two-lock inversion exists.
  std::thread t1([&] {
    MutexLock lock_a(a);
    MutexLock lock_b(b);
  });
  t1.join();
  std::thread t2([&] {
    MutexLock lock_b(b);
    MutexLock lock_c(c);
  });
  t2.join();
  EXPECT_DEATH(
      {
        MutexLock lock_c(c);
        MutexLock lock_a(a);
      },
      "lock-order cycle detected.*acquiring 'test\\.cycle3\\.a'");
}

}  // namespace
}  // namespace t10
