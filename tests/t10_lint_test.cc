// Tests for t10-lint (tools/lint_engine.h): exact findings on the fixture
// files under tests/lint_fixtures/, rule gating by path, NOLINT suppression
// semantics, the observability name registry (src/obs/names.h), and the
// self-lint — the real tree under src/, tools/, bench/ and examples/ must
// stay clean under its own linter.

#include "tools/lint_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/names.h"

namespace t10 {
namespace lint {
namespace {

std::string FixturePath(const std::string& name) {
  return std::string(T10_SOURCE_DIR) + "/tests/lint_fixtures/" + name;
}

std::vector<std::pair<int, std::string>> LinesAndRules(const std::vector<Finding>& findings) {
  std::vector<std::pair<int, std::string>> out;
  out.reserve(findings.size());
  for (const Finding& finding : findings) {
    out.emplace_back(finding.line, finding.rule);
  }
  return out;
}

std::string Dump(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& finding : findings) {
    out += finding.Format() + "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Fixture files: each produces an exact (line, rule) list.
// ---------------------------------------------------------------------------

struct FixtureCase {
  const char* file;
  std::vector<std::pair<int, std::string>> expected;
};

TEST(LintFixtureTest, FixturesProduceExactFindings) {
  const std::vector<FixtureCase> cases = {
      {"clean.cc", {}},
      {"raw_mutex.cc",
       {{4, "lint.sync.raw-primitive"},
        {8, "lint.sync.raw-primitive"},
        {11, "lint.sync.raw-primitive"},
        {11, "lint.sync.raw-primitive"}}},
      {"obs_names.cc",
       {{13, "lint.obs.name-grammar"},
        {14, "lint.obs.unregistered-name"},
        {20, "lint.obs.unregistered-name"}}},
      {"nolint.cc",
       {{6, "lint.nolint.missing-reason"},
        {7, "lint.nolint.missing-reason"},
        {10, "lint.sync.raw-primitive"}}},
  };
  for (const FixtureCase& fixture : cases) {
    SCOPED_TRACE(fixture.file);
    const std::vector<Finding> findings = LintPaths({FixturePath(fixture.file)});
    EXPECT_EQ(LinesAndRules(findings), fixture.expected) << Dump(findings);
  }
}

TEST(LintFixtureTest, DirectoryWalkAggregatesEveryFixture) {
  const std::vector<Finding> findings =
      LintPaths({std::string(T10_SOURCE_DIR) + "/tests/lint_fixtures"});
  std::map<std::string, int> by_rule;
  for (const Finding& finding : findings) {
    ++by_rule[finding.rule];
  }
  EXPECT_EQ(by_rule["lint.sync.raw-primitive"], 5) << Dump(findings);
  EXPECT_EQ(by_rule["lint.nolint.missing-reason"], 2);
  EXPECT_EQ(by_rule["lint.obs.name-grammar"], 1);
  EXPECT_EQ(by_rule["lint.obs.unregistered-name"], 2);
  EXPECT_EQ(findings.size(), 10u);
}

// ---------------------------------------------------------------------------
// Path gating and token boundaries (inline sources).
// ---------------------------------------------------------------------------

TEST(LintEngineTest, ServeCheckFiresOnlyUnderSrcServe) {
  const std::string contents = "void Handle() { T10_CHECK(ok); }\n";
  const std::vector<Finding> serve = LintFile("src/serve/handler.cc", contents);
  ASSERT_EQ(serve.size(), 1u) << Dump(serve);
  EXPECT_EQ(serve[0].rule, "lint.serve.check");
  EXPECT_EQ(serve[0].line, 1);
  EXPECT_TRUE(LintFile("src/core/compiler.cc", contents).empty());
}

TEST(LintEngineTest, ServeCheckMatchesWholeTokensOnly) {
  EXPECT_TRUE(LintFile("src/serve/x.cc",
                       "MY_T10_CHECK(v);\n"
                       "T10_CHECK_FAILED_COUNT(y);\n")
                  .empty());
  const std::vector<Finding> eq = LintFile("src/serve/x.cc", "T10_CHECK_EQ(a, b);\n");
  ASSERT_EQ(eq.size(), 1u);
  EXPECT_EQ(eq[0].rule, "lint.serve.check");
}

TEST(LintEngineTest, BannedCallsFireOnlyUnderSrc) {
  const std::string contents = "int Roll() { return rand(); }\n";
  const std::vector<Finding> src = LintFile("src/core/search.cc", contents);
  ASSERT_EQ(src.size(), 1u) << Dump(src);
  EXPECT_EQ(src[0].rule, "lint.determinism.banned-call");
  EXPECT_TRUE(LintFile("tools/gen.cc", contents).empty());
}

TEST(LintEngineTest, BannedCallBoundariesSkipMembersAndTypes) {
  EXPECT_TRUE(LintFile("src/core/clock.cc",
                       "auto t = clock.time();\n"
                       "std::chrono::steady_clock::time_point deadline;\n"
                       "int mytime(int x);\n"
                       "int v = mytime(3);\n")
                  .empty());
  const std::vector<Finding> qualified =
      LintFile("src/core/clock.cc", "auto now = std::time(nullptr);\n");
  ASSERT_EQ(qualified.size(), 1u);
  EXPECT_EQ(qualified[0].rule, "lint.determinism.banned-call");
}

TEST(LintEngineTest, CommentsAndStringsNeverFire) {
  EXPECT_TRUE(LintFile("src/serve/doc.cc",
                       "// T10_CHECK(x) would abort; std::mutex is banned here.\n"
                       "const char* kMsg = \"call rand() through std::mutex\";\n"
                       "/* std::condition_variable\n   rand() */\n")
                  .empty());
}

TEST(LintEngineTest, NolintSuppressesTheNamedRuleOnItsLine) {
  EXPECT_TRUE(
      LintFile("src/serve/boot.cc",
               "T10_CHECK(cores > 0);  // NOLINT(lint.serve.check): startup invariant.\n")
          .empty());
  const std::vector<Finding> wrong = LintFile(
      "src/serve/boot.cc",
      "T10_CHECK(cores > 0);  // NOLINT(lint.sync.raw-primitive): wrong category.\n");
  ASSERT_EQ(wrong.size(), 1u) << Dump(wrong);
  EXPECT_EQ(wrong[0].rule, "lint.serve.check");
}

TEST(LintEngineTest, JournalLogArgumentsAreChecked) {
  const std::string good =
      "obs::Log(journal, obs::Severity::kInfo, \"serve\", \"request.shed\", id, epoch, d);\n";
  EXPECT_TRUE(LintFile("src/serve/log.cc", good).empty());

  const std::vector<Finding> bad_subsystem = LintFile(
      "src/serve/log.cc",
      "obs::Log(journal, obs::Severity::kInfo, \"mars\", \"request.shed\", id, epoch, d);\n");
  ASSERT_EQ(bad_subsystem.size(), 1u) << Dump(bad_subsystem);
  EXPECT_EQ(bad_subsystem[0].rule, "lint.obs.unregistered-name");

  const std::vector<Finding> bad_event = LintFile(
      "src/serve/log.cc",
      "obs::Log(journal, obs::Severity::kInfo, \"serve\", \"request.fixture_missing\", id, "
      "epoch, d);\n");
  ASSERT_EQ(bad_event.size(), 1u) << Dump(bad_event);
  EXPECT_EQ(bad_event[0].rule, "lint.obs.unregistered-name");
}

TEST(LintEngineTest, MultiLineCallsAnchorToTheArgumentStart) {
  const std::string contents =
      "void F(Registry& m) {\n"
      "  m.GetCounter(\n"
      "      \"serve.fixture.unknown\");\n"
      "}\n";
  const std::vector<Finding> findings = LintFile("src/core/use.cc", contents);
  ASSERT_EQ(findings.size(), 1u) << Dump(findings);
  EXPECT_EQ(findings[0].rule, "lint.obs.unregistered-name");
  // The argument begins right after the open paren on line 2.
  EXPECT_EQ(findings[0].line, 2);
}

TEST(LintEngineTest, SyncSourcesAreExemptFromTheRawPrimitiveRule) {
  const std::string contents = "std::mutex raw_;\n";
  EXPECT_TRUE(LintFile("src/util/sync.h", contents).empty());
  EXPECT_TRUE(LintFile("src/util/sync.cc", contents).empty());
  EXPECT_FALSE(LintFile("src/util/thread_pool.h", contents).empty());
}

TEST(LintEngineTest, MissingPathYieldsAnIoFinding) {
  const std::vector<Finding> findings = LintPaths({"/no/such/t10/path"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "lint.io.unreadable");
  EXPECT_EQ(findings[0].line, 0);
}

TEST(LintEngineTest, FindingFormatMirrorsVerifyDiagnostics) {
  const Finding with_hint{"src/a.cc", 7, "lint.serve.check", "T10_CHECK aborts",
                          "return Status"};
  EXPECT_EQ(with_hint.Format(),
            "src/a.cc:7: error[lint.serve.check] T10_CHECK aborts (hint: return Status)");
  const Finding bare{"src/a.cc", 9, "lint.io.unreadable", "cannot open file", ""};
  EXPECT_EQ(bare.Format(), "src/a.cc:9: error[lint.io.unreadable] cannot open file");
}

// ---------------------------------------------------------------------------
// The observability name registry.
// ---------------------------------------------------------------------------

TEST(NamesTest, GrammarRequiresLowercaseDottedSegments) {
  EXPECT_TRUE(obs::MatchesNameGrammar("serve.shed.count"));
  EXPECT_TRUE(obs::MatchesNameGrammar("a.b"));
  EXPECT_TRUE(obs::MatchesNameGrammar("serve.queue_wait.seconds"));
  EXPECT_FALSE(obs::MatchesNameGrammar("serve"));         // One segment.
  EXPECT_FALSE(obs::MatchesNameGrammar("Serve.count"));   // Uppercase.
  EXPECT_FALSE(obs::MatchesNameGrammar("serve..count"));  // Empty segment.
  EXPECT_FALSE(obs::MatchesNameGrammar(".serve.count"));  // Leading dot.
  EXPECT_FALSE(obs::MatchesNameGrammar("serve.count."));  // Trailing dot.
  EXPECT_FALSE(obs::MatchesNameGrammar("serve.bad-char"));
  EXPECT_FALSE(obs::MatchesNameGrammar(""));
}

TEST(NamesTest, WildcardMatchesExactlyOneSegment) {
  EXPECT_TRUE(obs::IsRegisteredMetricName("compiler.pass.canonicalize.runs"));
  EXPECT_TRUE(obs::IsRegisteredMetricName("compiler.pass.fixture_pass.seconds"));
  EXPECT_FALSE(obs::IsRegisteredMetricName("compiler.pass.a.b.runs"));  // Two segments.
  EXPECT_FALSE(obs::IsRegisteredMetricName("compiler.pass.runs"));      // Zero segments.
}

TEST(NamesTest, RegistrationLookups) {
  EXPECT_TRUE(obs::IsRegisteredMetricName("serve.shed.count"));
  EXPECT_FALSE(obs::IsRegisteredMetricName("serve.invented.count"));
  EXPECT_TRUE(obs::IsRegisteredMetricName("router.cluster.repartition.count"));
  EXPECT_TRUE(obs::IsRegisteredMetricName("router.cluster.repartition.seconds"));
  EXPECT_TRUE(obs::IsRegisteredJournalEvent("request.shed"));
  EXPECT_FALSE(obs::IsRegisteredJournalEvent("request.invented"));
  EXPECT_TRUE(obs::IsRegisteredJournalEvent("router.cluster.repartition"));
  EXPECT_TRUE(obs::IsRegisteredJournalEvent("router.cluster.hot_swap"));
  EXPECT_TRUE(obs::IsRegisteredJournalEvent("server.storage_released"));
  EXPECT_TRUE(obs::IsRegisteredJournalSubsystem("serve"));
  EXPECT_FALSE(obs::IsRegisteredJournalSubsystem("mars"));
}

TEST(NamesTest, RegisteredTablesAreSorted) {
  const std::vector<std::string>& metrics = obs::RegisteredMetricNames();
  EXPECT_FALSE(metrics.empty());
  EXPECT_TRUE(std::is_sorted(metrics.begin(), metrics.end()));
  EXPECT_NE(std::find(metrics.begin(), metrics.end(), "serve.latency.seconds"), metrics.end());
  const std::vector<std::string>& events = obs::RegisteredJournalEvents();
  EXPECT_FALSE(events.empty());
  EXPECT_TRUE(std::is_sorted(events.begin(), events.end()));
  EXPECT_NE(std::find(events.begin(), events.end(), "failover.hot_swap"), events.end());
}

// ---------------------------------------------------------------------------
// Self-lint: the tree must stay clean under its own linter. This is the
// test-suite twin of the CI lint-invariants job.
// ---------------------------------------------------------------------------

TEST(SelfLintTest, RepositoryIsCleanUnderItsOwnLinter) {
  const std::string root = T10_SOURCE_DIR;
  const std::vector<Finding> findings =
      LintPaths({root + "/src", root + "/tools", root + "/bench", root + "/examples"});
  for (const Finding& finding : findings) {
    ADD_FAILURE() << finding.Format();
  }
  EXPECT_TRUE(findings.empty());
}

}  // namespace
}  // namespace lint
}  // namespace t10
