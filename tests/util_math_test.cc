#include "src/util/math_util.h"

#include <gtest/gtest.h>

#include <numeric>

namespace t10 {
namespace {

TEST(CeilDivTest, ExactAndInexact) {
  EXPECT_EQ(CeilDiv(0, 4), 0);
  EXPECT_EQ(CeilDiv(8, 4), 2);
  EXPECT_EQ(CeilDiv(9, 4), 3);
  EXPECT_EQ(CeilDiv(1, 1472), 1);
}

TEST(RoundUpTest, Basic) {
  EXPECT_EQ(RoundUp(0, 8), 0);
  EXPECT_EQ(RoundUp(1, 8), 8);
  EXPECT_EQ(RoundUp(16, 8), 16);
  EXPECT_EQ(RoundUp(17, 16), 32);
}

TEST(ProductTest, Basic) {
  EXPECT_EQ(Product({}), 1);
  EXPECT_EQ(Product({2, 3, 4}), 24);
  EXPECT_EQ(Product({5, 0, 7}), 0);
}

TEST(DivisorsTest, SortedAndComplete) {
  EXPECT_EQ(Divisors(1), (std::vector<std::int64_t>{1}));
  EXPECT_EQ(Divisors(12), (std::vector<std::int64_t>{1, 2, 3, 4, 6, 12}));
  EXPECT_EQ(Divisors(13), (std::vector<std::int64_t>{1, 13}));
  // Perfect square: no duplicated sqrt divisor.
  EXPECT_EQ(Divisors(36), (std::vector<std::int64_t>{1, 2, 3, 4, 6, 9, 12, 18, 36}));
}

TEST(OrderedFactorizationsTest, SmallCases) {
  auto fs = OrderedFactorizations(6, 2);
  // (1,6) (2,3) (3,2) (6,1).
  EXPECT_EQ(fs.size(), 4u);
  for (const auto& f : fs) {
    EXPECT_EQ(f[0] * f[1], 6);
  }
  EXPECT_EQ(OrderedFactorizations(1, 3).size(), 1u);
}

TEST(OrderedFactorizationsTest, CountMatchesEnumeration) {
  for (std::int64_t n : {1, 2, 12, 60, 64, 97}) {
    for (int k : {1, 2, 3, 4}) {
      EXPECT_EQ(CountOrderedFactorizations(n, k),
                static_cast<std::int64_t>(OrderedFactorizations(n, k).size()))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(OrderedFactorizationsTest, EveryTupleMultipliesToN) {
  for (const auto& f : OrderedFactorizations(60, 3)) {
    EXPECT_EQ(std::accumulate(f.begin(), f.end(), std::int64_t{1}, std::multiplies<>()), 60);
  }
}

TEST(GcdLcmTest, Basic) {
  EXPECT_EQ(Gcd(12, 18), 6);
  EXPECT_EQ(Gcd(7, 13), 1);
  EXPECT_EQ(Gcd(0, 5), 5);
  EXPECT_EQ(Lcm(4, 6), 12);
  EXPECT_EQ(Lcm(7, 13), 91);
}

TEST(IsPowerOfTwoTest, Basic) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(1024));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(12));
}

TEST(LargestDivisorAtMostTest, Basic) {
  EXPECT_EQ(LargestDivisorAtMost(24, 10), 8);
  EXPECT_EQ(LargestDivisorAtMost(24, 24), 24);
  EXPECT_EQ(LargestDivisorAtMost(13, 12), 1);
}

// Property sweep: every divisor divides, count is multiplicative-ish sanity.
class DivisorsProperty : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(DivisorsProperty, AllDivide) {
  const std::int64_t n = GetParam();
  auto ds = Divisors(n);
  EXPECT_FALSE(ds.empty());
  EXPECT_EQ(ds.front(), 1);
  EXPECT_EQ(ds.back(), n);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(n % ds[i], 0);
    if (i > 0) {
      EXPECT_LT(ds[i - 1], ds[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DivisorsProperty,
                         ::testing::Values(1, 2, 3, 16, 24, 97, 128, 1000, 1472, 5888));

}  // namespace
}  // namespace t10
