#include "src/util/regression.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace t10 {
namespace {

TEST(LinearRegressionTest, RecoversExactLinearModel) {
  LinearRegression reg;
  // y = 3 + 2a - 0.5b.
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    double a = rng.UniformReal(0, 100);
    double b = rng.UniformReal(0, 100);
    reg.AddSample({1.0, a, b}, 3.0 + 2.0 * a - 0.5 * b);
  }
  ASSERT_TRUE(reg.Fit());
  EXPECT_NEAR(reg.coefficients()[0], 3.0, 1e-8);
  EXPECT_NEAR(reg.coefficients()[1], 2.0, 1e-10);
  EXPECT_NEAR(reg.coefficients()[2], -0.5, 1e-10);
  EXPECT_NEAR(reg.RSquared(), 1.0, 1e-12);
  EXPECT_NEAR(reg.Predict({1.0, 10.0, 4.0}), 3.0 + 20.0 - 2.0, 1e-8);
}

TEST(LinearRegressionTest, NoisyFitHasHighRSquared) {
  LinearRegression reg;
  Rng rng(13);
  for (int i = 0; i < 500; ++i) {
    double a = rng.UniformReal(1, 1000);
    double y = 5.0 + 0.25 * a;
    reg.AddSample({1.0, a}, y * (1.0 + rng.Gaussian(0, 0.01)));
  }
  ASSERT_TRUE(reg.Fit());
  EXPECT_GT(reg.RSquared(), 0.99);
}

TEST(LinearRegressionTest, SingularSystemFails) {
  LinearRegression reg;
  // Two identical feature columns -> singular normal equations.
  for (int i = 0; i < 10; ++i) {
    double a = i;
    reg.AddSample({a, a}, 2.0 * a);
  }
  EXPECT_FALSE(reg.Fit());
}

TEST(LinearRegressionTest, FewerSamplesThanFeaturesFails) {
  LinearRegression reg;
  reg.AddSample({1.0, 2.0, 3.0}, 1.0);
  EXPECT_FALSE(reg.Fit());
}

TEST(LinearRegressionTest, EmptyFails) {
  LinearRegression reg;
  EXPECT_FALSE(reg.Fit());
}

}  // namespace
}  // namespace t10
