#include "src/util/stats.h"

#include <gtest/gtest.h>

namespace t10 {
namespace {

TEST(StatsTest, MeanMinMax) {
  std::vector<double> v = {1.0, 2.0, 3.0, 10.0};
  EXPECT_DOUBLE_EQ(Mean(v), 4.0);
  EXPECT_DOUBLE_EQ(Min(v), 1.0);
  EXPECT_DOUBLE_EQ(Max(v), 10.0);
}

TEST(StatsTest, GeoMean) {
  EXPECT_NEAR(GeoMean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(GeoMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(StatsTest, StdDev) {
  EXPECT_NEAR(StdDev({2.0, 2.0}), 0.0, 1e-12);
  EXPECT_NEAR(StdDev({0.0, 2.0}), 1.0, 1e-12);
}

TEST(StatsTest, Percentile) {
  std::vector<double> v = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 2.5);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 50), 7.0);
}

TEST(StatsTest, Mape) {
  EXPECT_NEAR(MeanAbsolutePercentageError({100, 200}, {110, 180}), 10.0, 1e-9);
  // Zero ground-truth entries are skipped.
  EXPECT_NEAR(MeanAbsolutePercentageError({0, 100}, {5, 90}), 10.0, 1e-9);
}

}  // namespace
}  // namespace t10
