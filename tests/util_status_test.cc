// Recoverable-error plumbing: Status carries a code + message, StatusOr
// either a value or a non-OK status, and the T10_RETURN_IF_ERROR /
// T10_ASSIGN_OR_RETURN macros early-return without touching the value on the
// error path. These are the contracts Machine::Allocate, the parser and the
// fault-tolerant executor rely on.

#include "src/util/status.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace t10 {
namespace {

TEST(StatusTest, DefaultAndOkAreOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_EQ(Status::Ok().ToString(), "OK");
}

TEST(StatusTest, FactoryHelpersSetCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    const char* name;
  };
  const std::vector<Case> cases = {
      {InvalidArgumentError("bad"), StatusCode::kInvalidArgument, "INVALID_ARGUMENT"},
      {FailedPreconditionError("bad"), StatusCode::kFailedPrecondition, "FAILED_PRECONDITION"},
      {ResourceExhaustedError("bad"), StatusCode::kResourceExhausted, "RESOURCE_EXHAUSTED"},
      {UnavailableError("bad"), StatusCode::kUnavailable, "UNAVAILABLE"},
      {DataLossError("bad"), StatusCode::kDataLoss, "DATA_LOSS"},
      {InternalError("bad"), StatusCode::kInternal, "INTERNAL"},
      {DeadlineExceededError("bad"), StatusCode::kDeadlineExceeded, "DEADLINE_EXCEEDED"},
      {CancelledError("bad"), StatusCode::kCancelled, "CANCELLED"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(c.status.message(), "bad");
    EXPECT_EQ(c.status.ToString(), std::string(c.name) + ": bad");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = DataLossError("gone");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(v.status().message(), "gone");
}

TEST(StatusOrTest, MoveOnlyValues) {
  StatusOr<std::vector<int>> v = std::vector<int>{1, 2, 3};
  ASSERT_TRUE(v.ok());
  std::vector<int> taken = *std::move(v);
  EXPECT_EQ(taken.size(), 3u);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("hello");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->size(), 5u);
}

Status FailsWhen(bool fail) {
  if (fail) {
    return UnavailableError("down");
  }
  return Status::Ok();
}

Status PassesThrough(bool fail, bool* reached_end) {
  T10_RETURN_IF_ERROR(FailsWhen(fail));
  *reached_end = true;
  return Status::Ok();
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  bool reached = false;
  Status s = PassesThrough(true, &reached);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_FALSE(reached);
  EXPECT_TRUE(PassesThrough(false, &reached).ok());
  EXPECT_TRUE(reached);
}

StatusOr<int> MakeValue(bool fail) {
  if (fail) {
    return ResourceExhaustedError("full");
  }
  return 7;
}

StatusOr<int> Doubled(bool fail) {
  int value = 0;
  T10_ASSIGN_OR_RETURN(value, MakeValue(fail));
  return value * 2;
}

TEST(StatusMacrosTest, AssignOrReturnUnwrapsOrPropagates) {
  StatusOr<int> ok = Doubled(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 14);
  StatusOr<int> bad = Doubled(true);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kResourceExhausted);
}

TEST(StatusDeathTest, AccessingErrorValueChecks) {
  StatusOr<int> v = InternalError("broken");
  EXPECT_DEATH({ (void)*v; }, "broken");
}

}  // namespace
}  // namespace t10
