#include "src/util/table.h"

#include <gtest/gtest.h>

namespace t10 {
namespace {

TEST(FormatTest, Bytes) {
  EXPECT_EQ(FormatBytes(512), "512B");
  EXPECT_EQ(FormatBytes(1024), "1.0KiB");
  EXPECT_EQ(FormatBytes(638976), "624.0KiB");
  EXPECT_EQ(FormatBytes(896LL * 1024 * 1024), "896.0MiB");
}

TEST(FormatTest, Seconds) {
  EXPECT_EQ(FormatSeconds(1.5), "1.500s");
  EXPECT_EQ(FormatSeconds(0.00123), "1.230ms");
  EXPECT_EQ(FormatSeconds(4.2e-6), "4.200us");
  EXPECT_EQ(FormatSeconds(3e-9), "3.0ns");
}

TEST(TableTest, AlignsColumns) {
  Table t({"op", "time"});
  t.AddRow({"matmul", "1.2ms"});
  t.AddRow({"c", "33.0ms"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("| op     | time   |"), std::string::npos) << s;
  EXPECT_NE(s.find("| matmul | 1.2ms  |"), std::string::npos) << s;
  EXPECT_NE(s.find("| c      | 33.0ms |"), std::string::npos) << s;
}

}  // namespace
}  // namespace t10
