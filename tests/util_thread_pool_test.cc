#include "src/util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

namespace t10 {
namespace {

TEST(ThreadPoolTest, ClampsWorkerCountToAtLeastOne) {
  ThreadPool zero(0);
  EXPECT_EQ(zero.num_threads(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.num_threads(), 1);
  ThreadPool four(4);
  EXPECT_EQ(four.num_threads(), 4);
}

TEST(ThreadPoolTest, HardwareConcurrencyIsPositive) {
  EXPECT_GE(ThreadPool::HardwareConcurrency(), 1);
}

TEST(ThreadPoolTest, SubmitAndWaitRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // Must not deadlock.
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  constexpr std::int64_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&hits](std::int64_t i) { hits[static_cast<std::size_t>(i)].fetch_add(1); });
  for (std::int64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForSlotWritesAreDeterministicAcrossWorkerCounts) {
  constexpr std::int64_t kN = 257;
  const auto compute = [](std::int64_t i) { return i * i + 7 * i + 3; };
  std::vector<std::int64_t> results_for[3];
  const int worker_counts[3] = {1, 2, 8};
  for (int w = 0; w < 3; ++w) {
    ThreadPool pool(worker_counts[w]);
    results_for[w].assign(kN, 0);
    auto& out = results_for[w];
    pool.ParallelFor(kN, [&out, &compute](std::int64_t i) {
      out[static_cast<std::size_t>(i)] = compute(i);
    });
  }
  EXPECT_EQ(results_for[0], results_for[1]);
  EXPECT_EQ(results_for[0], results_for[2]);
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndSingleRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&calls](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(-5, [&calls](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // n == 1 runs inline on the calling thread (no synchronization needed for
  // the plain int).
  pool.ParallelFor(1, [&calls](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ParallelForReusableAcrossCalls) {
  ThreadPool pool(3);
  std::vector<std::atomic<std::int64_t>> sums(3);
  for (int round = 0; round < 3; ++round) {
    pool.ParallelFor(100, [&sums, round](std::int64_t i) {
      sums[static_cast<std::size_t>(round)].fetch_add(i, std::memory_order_relaxed);
    });
  }
  const std::int64_t expected = 99 * 100 / 2;
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(sums[static_cast<std::size_t>(round)].load(), expected);
  }
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // ~ThreadPool waits for all 50.
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace t10
