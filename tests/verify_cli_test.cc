// Exit-code and output contract of `t10c --verify`: the demo model and the
// checked-in model files must verify clean (exit 0, "verify: ... passed"),
// and malformed --verify modes are flag errors (exit 2), reserving exit 3
// for genuine verification failures. The binary path is injected by CMake
// as T10_T10C_BIN.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

namespace t10 {
namespace {

int RunT10c(const std::string& args) {
  const std::string command = std::string(T10_T10C_BIN) + " " + args;
  const int status = std::system(command.c_str());
  return WEXITSTATUS(status);
}

TEST(VerifyCliTest, DemoModelPassesVerification) {
  EXPECT_EQ(RunT10c("--demo --verify > /dev/null 2>&1"), 0);
}

TEST(VerifyCliTest, DemoModelPassesStrictVerification) {
  EXPECT_EQ(RunT10c("--demo --verify=strict > /dev/null 2>&1"), 0);
}

TEST(VerifyCliTest, CheckedInModelsPassVerification) {
  const std::string models_dir = std::string(T10_SOURCE_DIR) + "/models";
  for (const char* model : {"mlp.t10", "conv_stack.t10", "transformer_block.t10"}) {
    EXPECT_EQ(RunT10c(models_dir + "/" + model + " --verify > /dev/null 2>&1"), 0)
        << model;
  }
}

TEST(VerifyCliTest, VerifyReportsPassOnStdout) {
  const std::string out_path = ::testing::TempDir() + "/t10c_verify_out.txt";
  ASSERT_EQ(RunT10c("--demo --verify > " + out_path + " 2>/dev/null"), 0);
  std::string contents;
  {
    std::FILE* file = std::fopen(out_path.c_str(), "r");
    ASSERT_NE(file, nullptr);
    char buffer[4096];
    std::size_t n;
    while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
      contents.append(buffer, n);
    }
    std::fclose(file);
  }
  EXPECT_NE(contents.find("verify: default passed"), std::string::npos) << contents;
}

TEST(VerifyCliTest, UnknownVerifyModeIsFlagError) {
  EXPECT_EQ(RunT10c("--demo --verify=bogus > /dev/null 2>&1"), 2);
}

}  // namespace
}  // namespace t10
