// Property test for the static verifier: every plan the intra-op search
// emits — and every model the compiler produces — must verify clean. The
// verifier re-derives each invariant independently (ring coverage, slab
// arithmetic, step counts, memory accounting), so this cross-checks the
// search, the lowering and the reconciliation against a second
// implementation of the paper's rules.
//
// The in-pipeline debug hooks are force-enabled for the whole binary via
// T10_INTERNAL_VERIFY, so Compile / LowerPlan paths here also self-check.

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "src/core/compiler.h"
#include "src/core/search.h"
#include "src/ir/builder.h"
#include "src/models/zoo.h"
#include "src/verify/verifier.h"

namespace t10 {
namespace {

// Runs before main(): InternalVerifyEnabled caches its first read.
const bool kForceInternalVerify = [] {
  ::setenv("T10_INTERNAL_VERIFY", "1", 1);
  return true;
}();

ChipSpec SmallChip(int cores = 64) {
  ChipSpec chip = ChipSpec::IpuMk2();
  chip.name = "small";
  chip.num_cores = cores;
  chip.cores_per_chip = cores;
  return chip;
}

TEST(VerifyPropertyTest, InternalVerifyForcedOn) {
  ASSERT_TRUE(kForceInternalVerify);
  EXPECT_TRUE(verify::InternalVerifyEnabled());
}

TEST(VerifyPropertyTest, EverySearchEmittedPlanVerifies) {
  const ChipSpec chip = SmallChip();
  GroundTruthTiming timing(chip);
  const verify::Verifier verifier(chip);
  const std::vector<Operator> ops = {
      MatMulOp("mm", 64, 256, 64, DataType::kF16, "A", "B", "C"),
      MatMulOp("skinny", 1, 2048, 512, DataType::kF16, "A", "B", "C"),
      BatchedMatMulOp("bmm", 8, 32, 64, 32, DataType::kF16, "A", "B", "C"),
      Conv2dOp("conv", 4, 16, 16, 28, 28, 3, 3, DataType::kF16, "I", "K", "O"),
      ElementwiseOp("gelu", {64, 512}, DataType::kF16, "x", "y", 8.0),
      ReduceOp("rsum", {64, 512}, DataType::kF16, "x", "y"),
  };
  int plans_checked = 0;
  for (const Operator& op : ops) {
    const IntraOpResult search = SearchOperatorPlans(op, chip, timing);
    ASSERT_FALSE(search.pareto.empty()) << op.DebugString();
    for (const PlanCandidate& candidate : search.pareto) {
      verify::VerifyResult result = verifier.VerifyPlan(candidate.plan);
      result.Merge(verifier.VerifyProgram(LowerPlan(candidate.plan), candidate.plan));
      EXPECT_TRUE(result.ok()) << op.name() << ":\n" << result.Listing();
      ++plans_checked;
    }
  }
  EXPECT_GT(plans_checked, 10);
}

TEST(VerifyPropertyTest, CompiledModelsVerifyClean) {
  // The full IPU Mk2: the zoo models are sized for it.
  const ChipSpec chip = ChipSpec::IpuMk2();
  const verify::Verifier verifier(chip);
  std::vector<Graph> graphs;
  {
    Graph mlp("mlp");
    mlp.Add(MatMulOp("fc1", 32, 256, 512, DataType::kF16, "x", "w1", "h1"));
    mlp.Add(ElementwiseOp("gelu", {32, 512}, DataType::kF16, "h1", "h2", 8.0));
    mlp.Add(MatMulOp("fc2", 32, 512, 256, DataType::kF16, "h2", "w2", "y"));
    mlp.MarkWeight("w1");
    mlp.MarkWeight("w2");
    graphs.push_back(std::move(mlp));
  }
  graphs.push_back(BuildNerf(64));
  graphs.push_back(BuildMlpTrainingStep(16, 2, 128));
  for (const Graph& graph : graphs) {
    Compiler compiler(chip);
    const CompiledModel model = compiler.Compile(graph);
    ASSERT_TRUE(model.fits) << graph.name();
    const verify::VerifyResult result = verifier.VerifyAll(model, graph);
    EXPECT_TRUE(result.ok()) << graph.name() << ":\n" << result.Listing();
  }
}

TEST(VerifyPropertyTest, StrictModeAcceptsCompiledModels) {
  const ChipSpec chip = ChipSpec::IpuMk2();
  const verify::Verifier strict(chip, verify::VerifyOptions{/*strict=*/true});
  const Graph graph = BuildNerf(64);
  Compiler compiler(chip);
  const CompiledModel model = compiler.Compile(graph);
  ASSERT_TRUE(model.fits);
  const verify::VerifyResult result = strict.VerifyAll(model, graph);
  EXPECT_TRUE(result.ok(strict.fail_threshold())) << result.Listing();
}

}  // namespace
}  // namespace t10
