// Negative tests for the static verifier (src/verify): each case hand-builds
// a malformed program / graph / memory plan / compiled model by mutating a
// known-good artifact and asserts the exact rule id that must fire. A few
// positive cases pin down that valid artifacts verify clean.

#include "src/verify/verifier.h"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "src/core/search.h"
#include "src/ir/builder.h"

namespace t10 {
namespace {

using verify::Severity;
using verify::Verifier;
using verify::VerifyResult;

ChipSpec SmallChip(int cores = 64) {
  ChipSpec chip = ChipSpec::IpuMk2();
  chip.name = "small";
  chip.num_cores = cores;
  chip.cores_per_chip = cores;
  return chip;
}

// Figure 7's 2x3-core matmul: both inputs rotate, the output does not.
ExecutionPlan Figure7Plan() {
  static const Operator* op =
      new Operator(MatMulOp("mm", 2, 6, 3, DataType::kF32, "A", "B", "C"));
  auto plan = ExecutionPlan::Create(*op, {2, 3, 1}, {{1, 3}, {2, 1}, {1, 1}});
  EXPECT_TRUE(plan.has_value());
  return *plan;
}

Graph Mlp(std::int64_t batch = 32) {
  Graph g("mlp");
  g.Add(MatMulOp("fc1", batch, 256, 512, DataType::kF16, "x", "w1", "h1"));
  g.Add(ElementwiseOp("gelu", {batch, 512}, DataType::kF16, "h1", "h2", 8.0));
  g.Add(MatMulOp("fc2", batch, 512, 256, DataType::kF16, "h2", "w2", "y"));
  g.MarkWeight("w1");
  g.MarkWeight("w2");
  return g;
}

TEST(VerifyPlanTest, ValidPlanVerifiesClean) {
  ExecutionPlan plan = Figure7Plan();
  Verifier verifier(SmallChip());
  VerifyResult result = verifier.VerifyPlan(plan);
  EXPECT_TRUE(result.ok()) << result.Listing();
  result.Merge(verifier.VerifyProgram(LowerPlan(plan), plan));
  EXPECT_TRUE(result.ok()) << result.Listing();
}

TEST(VerifyPlanTest, CapacityOverflowFires) {
  ExecutionPlan plan = Figure7Plan();
  ChipSpec tiny = SmallChip();
  tiny.core_memory_bytes = 16;  // Smaller than any window set.
  Verifier verifier(tiny);
  EXPECT_TRUE(verifier.VerifyPlan(plan).HasRule("plan.capacity"));
  EXPECT_TRUE(
      verifier.VerifyProgram(LowerPlan(plan), plan).HasRule("program.capacity"));
}

TEST(VerifyPlanTest, DegradedChipRejectsFullWidthPlan) {
  // Figure 7's plan spans 6 cores; with one of 6 cores masked out by the
  // health state only 5 survive, so the plan must be rejected until it is
  // recompiled against the surviving topology.
  ExecutionPlan plan = Figure7Plan();
  ChipSpec chip = SmallChip(6);
  chip.health.failed_cores = {2};
  Verifier verifier(chip);
  EXPECT_TRUE(verifier.VerifyPlan(plan).HasRule("plan.degraded-cores"));
  // A healthy chip of the same size accepts it.
  EXPECT_TRUE(Verifier(SmallChip(6)).VerifyPlan(plan).ok());
}

TEST(VerifyPlanTest, FootprintMatchesPlanAccountingPlusStaging) {
  ExecutionPlan plan = Figure7Plan();
  const ChipSpec chip = SmallChip();
  // The footprint model differs from the plan's own accounting only by
  // allocator alignment: at most 8 bytes per operand buffer plus the
  // staging buffer.
  const std::int64_t footprint = verify::ProgramFootprintBytes(plan, chip);
  const std::int64_t accounted = plan.PerCoreBytes(chip);
  EXPECT_GE(footprint, accounted);
  EXPECT_LE(footprint - accounted,
            8 * static_cast<std::int64_t>(plan.tensors().size() + 1));
}

struct ProgramMutationCase {
  const char* name;
  std::function<void(DeviceProgram&)> mutate;
  const char* expected_rule;
};

class VerifyProgramMutationTest : public ::testing::TestWithParam<ProgramMutationCase> {};

TEST_P(VerifyProgramMutationTest, FiresExpectedRule) {
  ExecutionPlan plan = Figure7Plan();
  DeviceProgram program = LowerPlan(plan);
  GetParam().mutate(program);
  Verifier verifier(SmallChip());
  const VerifyResult result = verifier.VerifyProgram(program, plan);
  EXPECT_TRUE(result.HasRule(GetParam().expected_rule))
      << "expected " << GetParam().expected_rule << ", got:\n"
      << result.Listing();
  EXPECT_FALSE(result.ok());
}

INSTANTIATE_TEST_SUITE_P(
    Mutations, VerifyProgramMutationTest,
    ::testing::Values(
        ProgramMutationCase{"duplicate_ring_core",
                            [](DeviceProgram& p) {
                              // Core appears twice in one ring: it receives
                              // two slabs per shift, another core none.
                              p.allocations[0].rings[0][0] =
                                  p.allocations[0].rings[0][1];
                            },
                            "program.ring-conservation"},
        ProgramMutationCase{"dropped_ring",
                            [](DeviceProgram& p) { p.allocations[1].rings.pop_back(); },
                            "program.ring-structure"},
        ProgramMutationCase{"ring_core_out_of_range",
                            [](DeviceProgram& p) { p.allocations[0].rings[0][0] = 99; },
                            "program.ring-structure"},
        ProgramMutationCase{"misaligned_slab",
                            [](DeviceProgram& p) {
                              // Not a whole-pace slab of any rotating dim.
                              p.steps[0].shifts[0].slab_bytes += 4;
                            },
                            "program.slab-alignment"},
        ProgramMutationCase{"missing_step",
                            [](DeviceProgram& p) { p.steps.pop_back(); },
                            "program.step-count"},
        ProgramMutationCase{"missing_shift",
                            [](DeviceProgram& p) {
                              // One operand under-shifts: the next step would
                              // deadlock waiting for data that never arrives.
                              p.steps[1].shifts.pop_back();
                            },
                            "program.step-count"},
        ProgramMutationCase{"duplicated_shift",
                            [](DeviceProgram& p) {
                              p.steps[1].shifts.push_back(p.steps[1].shifts[0]);
                            },
                            "program.traffic-accounting"},
        ProgramMutationCase{"shift_of_unknown_operand",
                            [](DeviceProgram& p) { p.steps[0].shifts[0].operand = 7; },
                            "program.shift-operand"},
        ProgramMutationCase{"shift_of_static_operand",
                            [](DeviceProgram& p) {
                              p.steps[0].shifts[0].operand = 2;  // Output: no ring.
                            },
                            "program.shift-operand"},
        ProgramMutationCase{"wrong_compute_vertices",
                            [](DeviceProgram& p) { p.steps[2].compute.vertices = 1; },
                            "program.compute-vertices"},
        ProgramMutationCase{"wrong_allocation_bytes",
                            [](DeviceProgram& p) { p.allocations[2].window_bytes *= 2; },
                            "program.allocation"},
        ProgramMutationCase{"phantom_epilogue",
                            [](DeviceProgram& p) { p.epilogue_rounds = 3; },
                            "program.epilogue"}),
    [](const ::testing::TestParamInfo<ProgramMutationCase>& info) {
      return info.param.name;
    });

TEST(VerifyGraphTest, ValidGraphVerifiesClean) {
  Graph graph = Mlp();
  const VerifyResult result = Verifier(SmallChip()).VerifyGraph(graph);
  EXPECT_TRUE(result.empty()) << result.Listing();
}

TEST(VerifyGraphTest, DtypeMismatchFires) {
  Graph graph = Mlp();
  graph.mutable_tensor("h1").dtype = DataType::kF32;
  EXPECT_TRUE(Verifier(SmallChip()).VerifyGraph(graph).HasRule("graph.dtype-mismatch"));
}

TEST(VerifyGraphTest, ShapeMismatchFires) {
  Graph graph = Mlp();
  graph.mutable_tensor("w1").shape = {256, 999};
  EXPECT_TRUE(Verifier(SmallChip()).VerifyGraph(graph).HasRule("graph.shape-mismatch"));
}

TEST(VerifyGraphTest, DanglingOperandFires) {
  Graph graph = Mlp();
  // "h2" claims to be produced by its own consumer: a use-before-def cycle.
  graph.mutable_tensor("h2").producer = 2;
  EXPECT_TRUE(Verifier(SmallChip()).VerifyGraph(graph).HasRule("graph.dangling-operand"));
}

TEST(VerifyGraphTest, LostConsumerBookkeepingFires) {
  Graph graph = Mlp();
  graph.mutable_tensor("h1").consumers.clear();
  EXPECT_TRUE(Verifier(SmallChip()).VerifyGraph(graph).HasRule("graph.dangling-operand"));
}

TEST(VerifyGraphTest, ProducedWeightFires) {
  Graph graph = Mlp();
  graph.mutable_tensor("h1").is_weight = true;
  EXPECT_TRUE(Verifier(SmallChip()).VerifyGraph(graph).HasRule("graph.dangling-operand"));
}

TEST(VerifyMemoryPlanTest, OverlapAndPeakRulesFire) {
  MemoryPlan plan;
  plan.capacity = 1024;
  // Two intervals live at op 1 sharing addresses [0, 64).
  plan.intervals.push_back(MemoryInterval{"a", 0, 64, 0, 1, false});
  plan.intervals.push_back(MemoryInterval{"b", 32, 64, 1, 2, false});
  plan.peak_bytes = 128;
  plan.fits = true;
  const VerifyResult result = Verifier(SmallChip()).VerifyMemoryPlan(plan);
  EXPECT_TRUE(result.HasRule("memplan.overlap")) << result.Listing();

  MemoryPlan disjoint = plan;
  disjoint.intervals[1].offset = 64;
  disjoint.peak_bytes = 999;  // Recorded peak disagrees with the interval set.
  EXPECT_TRUE(
      Verifier(SmallChip()).VerifyMemoryPlan(disjoint).HasRule("memplan.peak"));

  disjoint.peak_bytes = 128;
  EXPECT_TRUE(Verifier(SmallChip()).VerifyMemoryPlan(disjoint).ok());

  MemoryPlan malformed = disjoint;
  malformed.intervals[0].bytes = 0;
  EXPECT_TRUE(
      Verifier(SmallChip()).VerifyMemoryPlan(malformed).HasRule("memplan.interval"));
}

class VerifyModelTest : public ::testing::Test {
 protected:
  VerifyModelTest() : chip_(SmallChip()), graph_(Mlp()), verifier_(chip_) {
    Compiler compiler(chip_);
    model_ = compiler.Compile(graph_);
    EXPECT_TRUE(model_.fits);
  }

  ChipSpec chip_;
  Graph graph_;
  Verifier verifier_;
  CompiledModel model_;
};

TEST_F(VerifyModelTest, CompiledModelVerifiesClean) {
  const VerifyResult result = verifier_.VerifyAll(model_, graph_);
  EXPECT_TRUE(result.ok()) << result.Listing();
}

TEST_F(VerifyModelTest, SetupAccountingMismatchFires) {
  model_.ops[0].setup_bytes += 64;
  EXPECT_TRUE(
      verifier_.VerifyModel(model_, graph_).HasRule("model.setup-accounting"));
}

TEST_F(VerifyModelTest, IdleFootprintMismatchFires) {
  model_.idle_bytes_per_core += 8;
  EXPECT_TRUE(verifier_.VerifyModel(model_, graph_).HasRule("model.idle-footprint"));
}

TEST_F(VerifyModelTest, NonMonotoneTrajectoryFires) {
  ASSERT_FALSE(model_.reconcile_trajectory.empty());
  ReconcileStep shrunk = model_.reconcile_trajectory.back();
  shrunk.idle_bytes_per_core -= 1;
  shrunk.feasible = false;
  model_.reconcile_trajectory.push_back(shrunk);
  EXPECT_TRUE(
      verifier_.VerifyModel(model_, graph_).HasRule("model.reconcile-monotone"));
}

TEST_F(VerifyModelTest, OpOrderMismatchFires) {
  model_.ops[1].op_index = 0;
  EXPECT_TRUE(verifier_.VerifyModel(model_, graph_).HasRule("model.op-order"));
}

TEST_F(VerifyModelTest, MetricsMismatchFires) {
  model_.ops[0].measured.steps += 1;
  EXPECT_TRUE(verifier_.VerifyModel(model_, graph_).HasRule("model.metrics-mismatch"));
}

TEST_F(VerifyModelTest, ClaimedFitWithOversizedPeakFires) {
  model_.memory_peak_bytes = chip_.core_memory_bytes + 1;
  EXPECT_TRUE(verifier_.VerifyModel(model_, graph_).HasRule("model.memory-peak"));
}

TEST_F(VerifyModelTest, PlanBoundToForeignGraphFires) {
  const Graph other = Mlp();  // Identical structure, different Operator storage.
  EXPECT_TRUE(verifier_.VerifyModel(model_, other).HasRule("model.plan-binding"));
}

TEST(VerifyResultTest, StrictModePromotesWarnings) {
  VerifyResult result;
  verify::DiagnosticBuilder(result, "plan.padding", "mm", Severity::kWarning)
      << "padding wastes most of the footprint";
  EXPECT_TRUE(result.ok());
  EXPECT_FALSE(result.ok(Severity::kWarning));
  EXPECT_EQ(result.warnings(), 1);
  EXPECT_EQ(result.errors(), 0);
}

TEST(VerifyResultTest, DiagnosticFormatting) {
  VerifyResult result;
  verify::DiagnosticBuilder(result, "program.capacity", "fc1")
          .Step(3)
          .Core(7)
          .Hint("shrink the windows")
      << "footprint 1000B exceeds 624B";
  ASSERT_EQ(result.diagnostics().size(), 1u);
  EXPECT_EQ(result.diagnostics()[0].Format(),
            "error[program.capacity] fc1 step 3 core 7: footprint 1000B exceeds 624B "
            "(hint: shrink the windows)");
  EXPECT_NE(result.Listing().find("1 error(s), 0 warning(s)"), std::string::npos);
}

}  // namespace
}  // namespace t10
