#include "tools/lint_engine.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "src/obs/names.h"

namespace t10 {
namespace lint {

namespace {

// ---------------------------------------------------------------------------
// Source views.
//
// Both views preserve the byte offsets and line structure of the original
// text, so a match position in either view maps straight back to a line
// number in the file:
//   nocomment  — comments blanked, string/char literals intact (name
//                extraction reads literal contents here).
//   scrubbed   — comments AND literal contents blanked (token rules match
//                here, so "std::mutex" in a doc string never fires).
// ---------------------------------------------------------------------------

struct Views {
  std::string nocomment;
  std::string scrubbed;
};

Views BuildViews(const std::string& text) {
  Views v;
  v.nocomment.reserve(text.size());
  v.scrubbed.reserve(text.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          v.nocomment += "  ";
          v.scrubbed += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          v.nocomment += "  ";
          v.scrubbed += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kString;
          v.nocomment += c;
          v.scrubbed += c;
        } else if (c == '\'') {
          state = State::kChar;
          v.nocomment += c;
          v.scrubbed += c;
        } else {
          v.nocomment += c;
          v.scrubbed += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          v.nocomment += c;
          v.scrubbed += c;
        } else {
          v.nocomment += ' ';
          v.scrubbed += ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          v.nocomment += "  ";
          v.scrubbed += "  ";
          ++i;
        } else {
          v.nocomment += c == '\n' ? '\n' : ' ';
          v.scrubbed += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
      case State::kChar:
        if (c == '\\' && next != '\0') {
          v.nocomment += c;
          v.nocomment += next;
          v.scrubbed += "  ";
          ++i;
        } else if ((state == State::kString && c == '"') ||
                   (state == State::kChar && c == '\'')) {
          state = State::kCode;
          v.nocomment += c;
          v.scrubbed += c;
        } else {
          v.nocomment += c;
          v.scrubbed += c == '\n' ? '\n' : ' ';
        }
        break;
    }
  }
  return v;
}

int LineOfOffset(const std::string& text, std::size_t offset) {
  return 1 + static_cast<int>(std::count(text.begin(), text.begin() + static_cast<std::ptrdiff_t>(
                                                           std::min(offset, text.size())),
                                         '\n'));
}

bool IsIdentChar(char c) {
  return (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_';
}

// True when text[pos..] begins the identifier `word` at a clean boundary.
bool TokenAt(const std::string& text, std::size_t pos, const std::string& word) {
  if (text.compare(pos, word.size(), word) != 0) {
    return false;
  }
  if (pos > 0 && (IsIdentChar(text[pos - 1]) || text[pos - 1] == ':')) {
    return false;
  }
  const std::size_t end = pos + word.size();
  return end >= text.size() || !IsIdentChar(text[end]);
}

// ---------------------------------------------------------------------------
// NOLINT suppressions.
//
// Convention (enforced by lint.nolint.missing-reason): every suppression
// names its category and says why —
//   ... // NOLINT(lint.serve.check): startup invariant, cannot fire per-request
//   // NOLINTNEXTLINE(concurrency-mt-unsafe): read once before threads exist
// A suppression on line L (or a NOLINTNEXTLINE on L-1) silences findings of
// that category on L.
// ---------------------------------------------------------------------------

struct Suppressions {
  // line -> categories silenced on that line.
  std::map<int, std::set<std::string>> by_line;
  std::vector<Finding> malformed;  // lint.nolint.missing-reason findings.
};

Suppressions ScanNolint(const std::string& path, const std::string& text) {
  Suppressions sup;
  std::istringstream stream(text);
  std::string line;
  int lineno = 0;
  while (std::getline(stream, line)) {
    ++lineno;
    // Only actual suppression markers count: a comment-leading NOLINT whose
    // token ends in '(', ':' or end-of-line. Prose that merely talks about
    // the word (like this comment) never trips the rule.
    std::size_t marker = line.find("// NOLINT");
    if (marker == std::string::npos) {
      marker = line.find("//NOLINT");
    }
    if (marker == std::string::npos) {
      continue;
    }
    const std::size_t pos = line.find("NOLINT", marker);
    const bool nextline = line.compare(pos, 14, "NOLINTNEXTLINE") == 0;
    const std::size_t after = pos + (nextline ? 14 : 6);
    if (after < line.size() && line[after] != '(' && line[after] != ':') {
      continue;
    }
    std::string category;
    std::size_t rest = after;
    if (after < line.size() && line[after] == '(') {
      const std::size_t close = line.find(')', after);
      if (close != std::string::npos) {
        category = line.substr(after + 1, close - after - 1);
        rest = close + 1;
      }
    }
    // Reason: "): <nonempty text>" after the category.
    bool has_reason = false;
    if (rest < line.size() && line[rest] == ':') {
      const std::string reason = line.substr(rest + 1);
      has_reason = reason.find_first_not_of(" \t") != std::string::npos;
    }
    if (category.empty() || !has_reason) {
      sup.malformed.push_back(
          {path, lineno, "lint.nolint.missing-reason",
           "NOLINT without a category and reason",
           "write `NOLINT(<rule-or-check>): <why this occurrence is safe>`"});
    }
    if (!category.empty()) {
      sup.by_line[lineno + (nextline ? 1 : 0)].insert(category);
    }
  }
  return sup;
}

bool Suppressed(const Suppressions& sup, int line, const std::string& rule) {
  const auto it = sup.by_line.find(line);
  return it != sup.by_line.end() && it->second.count(rule) > 0;
}

// ---------------------------------------------------------------------------
// Rule: lint.sync.raw-primitive
// ---------------------------------------------------------------------------

const char* const kRawPrimitives[] = {
    "mutex",          "timed_mutex",  "recursive_mutex",        "recursive_timed_mutex",
    "shared_mutex",   "shared_timed_mutex", "condition_variable",
    "condition_variable_any", "lock_guard", "unique_lock", "scoped_lock", "shared_lock",
};

const char* const kRawHeaders[] = {"<mutex>", "<shared_mutex>", "<condition_variable>"};

void CheckRawPrimitives(const std::string& path, const Views& views,
                        std::vector<Finding>* findings) {
  const std::string& text = views.scrubbed;
  for (const char* name : kRawPrimitives) {
    const std::string token = std::string("std::") + name;
    std::size_t pos = 0;
    while ((pos = text.find(token, pos)) != std::string::npos) {
      // `std::` is never preceded by an identifier char in valid code, and
      // the suffix boundary keeps std::mutex from matching inside
      // std::mutex_like_thing.
      const std::size_t end = pos + token.size();
      if (end >= text.size() || !IsIdentChar(text[end])) {
        findings->push_back({path, LineOfOffset(text, pos), "lint.sync.raw-primitive",
                             "raw " + token + " outside src/util/sync.h",
                             "use t10::Mutex / MutexLock / CondVar / SharedMutex from "
                             "src/util/sync.h so the thread-safety analysis and the "
                             "lock-order detector see the acquisition"});
      }
      pos = end;
    }
  }
  for (const char* header : kRawHeaders) {
    const std::string token = std::string("#include ") + header;
    const std::size_t pos = text.find(token);
    if (pos != std::string::npos) {
      findings->push_back({path, LineOfOffset(text, pos), "lint.sync.raw-primitive",
                           std::string("direct include of ") + header +
                               " outside src/util/sync.h",
                           "include \"src/util/sync.h\" instead"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: lint.serve.check
// ---------------------------------------------------------------------------

void CheckServeAborts(const std::string& path, const Views& views,
                      std::vector<Finding>* findings) {
  const std::string& text = views.scrubbed;
  std::size_t pos = 0;
  while ((pos = text.find("T10_CHECK", pos)) != std::string::npos) {
    if (TokenAt(text, pos, "T10_CHECK") || TokenAt(text, pos, "T10_CHECK_EQ") ||
        TokenAt(text, pos, "T10_CHECK_NE") || TokenAt(text, pos, "T10_CHECK_GE") ||
        TokenAt(text, pos, "T10_CHECK_GT") || TokenAt(text, pos, "T10_CHECK_LE") ||
        TokenAt(text, pos, "T10_CHECK_LT")) {
      findings->push_back({path, LineOfOffset(text, pos), "lint.serve.check",
                           "T10_CHECK aborts the serving process",
                           "return a t10::Status on request paths; for a true startup "
                           "invariant add `NOLINT(lint.serve.check): <why it cannot fire "
                           "at request time>`"});
    }
    pos += 9;  // strlen("T10_CHECK")
  }
}

// ---------------------------------------------------------------------------
// Rule: lint.determinism.banned-call
// ---------------------------------------------------------------------------

const char* const kBannedCalls[] = {"rand",      "srand", "random", "drand48", "lrand48",
                                    "localtime", "gmtime", "ctime",  "asctime", "time"};

void CheckBannedCalls(const std::string& path, const Views& views,
                      std::vector<Finding>* findings) {
  const std::string& text = views.scrubbed;
  for (const char* name : kBannedCalls) {
    const std::string word = name;
    std::size_t pos = 0;
    while ((pos = text.find(word, pos)) != std::string::npos) {
      const std::size_t end = pos + word.size();
      // Identifier boundaries, and not a member/qualified call (.time(),
      // clock::time_point) — except an explicit std:: prefix, which IS the
      // libc call.
      bool qualified_std = pos >= 5 && text.compare(pos - 5, 5, "std::") == 0;
      bool boundary_ok = (pos == 0 || (!IsIdentChar(text[pos - 1]) && text[pos - 1] != '.' &&
                                       text[pos - 1] != ':' && text[pos - 1] != '>')) ||
                         qualified_std;
      if (qualified_std && pos >= 6 && IsIdentChar(text[pos - 6])) {
        boundary_ok = false;  // my_std::time — not the libc one.
      }
      std::size_t call = end;
      while (call < text.size() && (text[call] == ' ' || text[call] == '\t')) {
        ++call;
      }
      if (boundary_ok && call < text.size() && text[call] == '(' &&
          (end >= text.size() || !IsIdentChar(text[end]))) {
        findings->push_back({path, LineOfOffset(text, pos), "lint.determinism.banned-call",
                             std::string("call to ") + word +
                                 "() in deterministic code",
                             "use t10::Rng (seeded) for randomness and "
                             "std::chrono::steady_clock for time"});
      }
      pos = end;
    }
  }
}

// ---------------------------------------------------------------------------
// Rules: lint.obs.name-grammar / lint.obs.unregistered-name
// ---------------------------------------------------------------------------

// Splits the top-level arguments of the call whose '(' is at `open` in the
// nocomment view. Returns offsets+texts; empty when parens never balance.
struct Arg {
  std::size_t offset = 0;
  std::string text;
};

std::vector<Arg> SplitArgs(const std::string& text, std::size_t open) {
  std::vector<Arg> args;
  int depth = 1;
  bool in_string = false;
  std::size_t start = open + 1;
  for (std::size_t i = open + 1; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '(' || c == '[' || c == '{') {
      ++depth;
    } else if (c == ')' || c == ']' || c == '}') {
      --depth;
      if (depth == 0) {
        args.push_back({start, text.substr(start, i - start)});
        return args;
      }
    } else if (c == ',' && depth == 1) {
      args.push_back({start, text.substr(start, i - start)});
      start = i + 1;
    }
  }
  return {};  // Unbalanced (truncated file); nothing to check.
}

// If `arg` is exactly one string literal (concatenated literals count),
// returns its content; otherwise nullopt-style empty with ok=false.
bool LiteralContent(const std::string& arg, std::string* content) {
  std::size_t i = arg.find_first_not_of(" \t\n");
  if (i == std::string::npos || arg[i] != '"') {
    return false;
  }
  std::string out;
  while (i < arg.size() && arg[i] == '"') {
    ++i;
    while (i < arg.size() && arg[i] != '"') {
      if (arg[i] == '\\') {
        ++i;
      }
      out += arg[i];
      ++i;
    }
    if (i >= arg.size()) {
      return false;  // Unterminated.
    }
    ++i;  // Closing quote.
    i = arg.find_first_not_of(" \t\n", i);
    if (i == std::string::npos) {
      break;
    }
    if (arg[i] != '"') {
      return false;  // "literal" + dynamic — treat as dynamic.
    }
  }
  *content = out;
  return true;
}

enum class NameKind { kMetric, kJournalEvent, kJournalSubsystem };

void CheckName(const std::string& path, const std::string& text, std::size_t offset,
               const std::string& name, NameKind kind, std::vector<Finding>* findings) {
  const int line = LineOfOffset(text, offset);
  // Subsystem tags are single segments ("serve"); only dotted names carry
  // the grammar rule.
  if (kind != NameKind::kJournalSubsystem && !obs::MatchesNameGrammar(name)) {
    findings->push_back({path, line, "lint.obs.name-grammar",
                         "name \"" + name + "\" violates the dotted lowercase grammar",
                         "use `subsystem.noun.verb` segments of [a-z0-9_]+"});
    return;
  }
  bool registered = true;
  const char* table = "";
  switch (kind) {
    case NameKind::kMetric:
      registered = obs::IsRegisteredMetricName(name);
      table = "kMetricNames";
      break;
    case NameKind::kJournalEvent:
      registered = obs::IsRegisteredJournalEvent(name);
      table = "kJournalEvents";
      break;
    case NameKind::kJournalSubsystem:
      registered = obs::IsRegisteredJournalSubsystem(name);
      table = "kJournalSubsystems";
      break;
  }
  if (!registered) {
    findings->push_back({path, line, "lint.obs.unregistered-name",
                         "name \"" + name + "\" is not declared in src/obs/names.cc",
                         std::string("add it to ") + table +
                             " (sorted) or fix the typo at the call site"});
  }
}

void CheckObsNames(const std::string& path, const Views& views,
                   std::vector<Finding>* findings) {
  // The table itself is allowed to contain the names.
  if (path.find("src/obs/names.cc") != std::string::npos) {
    return;
  }
  struct Call {
    const char* token;
    int arg;  // Which argument carries the name.
    NameKind kind;
  };
  // EventJournal::Append(severity, subsystem, event, ...) — obs::Log is the
  // same shape shifted by the journal pointer.
  const Call kCalls[] = {
      {"GetCounter", 0, NameKind::kMetric},
      {"GetGauge", 0, NameKind::kMetric},
      {"GetHistogram", 0, NameKind::kMetric},
      {"ScopedTimer", 0, NameKind::kMetric},
      {"Log", 2, NameKind::kJournalSubsystem},
      {"Log", 3, NameKind::kJournalEvent},
      {"Append", 1, NameKind::kJournalSubsystem},
      {"Append", 2, NameKind::kJournalEvent},
  };
  const std::string& scrubbed = views.scrubbed;
  const std::string& nocomment = views.nocomment;
  for (const Call& call : kCalls) {
    std::size_t pos = 0;
    const std::string token = call.token;
    while ((pos = scrubbed.find(token, pos)) != std::string::npos) {
      if (!TokenAt(scrubbed, pos, token) &&
          // obs::Log is colon-qualified; allow that one through the boundary.
          !(token == "Log" && pos >= 5 && scrubbed.compare(pos - 5, 5, "obs::") == 0)) {
        pos += token.size();
        continue;
      }
      std::size_t open = pos + token.size();
      while (open < scrubbed.size() &&
             (scrubbed[open] == ' ' || scrubbed[open] == '\t' || scrubbed[open] == '\n')) {
        ++open;
      }
      if (open >= scrubbed.size() || scrubbed[open] != '(') {
        pos += token.size();
        continue;
      }
      const std::vector<Arg> args = SplitArgs(nocomment, open);
      if (static_cast<std::size_t>(call.arg) < args.size()) {
        std::string name;
        if (LiteralContent(args[static_cast<std::size_t>(call.arg)].text, &name)) {
          CheckName(path, nocomment, args[static_cast<std::size_t>(call.arg)].offset, name,
                    call.kind, findings);
        }
      }
      pos += token.size();
    }
  }
}

// ---------------------------------------------------------------------------
// Path classification.
// ---------------------------------------------------------------------------

std::string Normalize(const std::string& path) {
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');
  return p;
}

bool UnderDir(const std::string& path, const std::string& dir) {
  const std::string p = Normalize(path);
  return p.rfind(dir, 0) == 0 || p.find("/" + dir) != std::string::npos;
}

bool IsSyncSource(const std::string& path) {
  const std::string p = Normalize(path);
  return p.size() >= 15 && (p.find("src/util/sync.h") != std::string::npos ||
                            p.find("src/util/sync.cc") != std::string::npos);
}

}  // namespace

std::string Finding::Format() const {
  std::string out = file + ":" + std::to_string(line) + ": error[" + rule + "] " + message;
  if (!hint.empty()) {
    out += " (hint: " + hint + ")";
  }
  return out;
}

std::vector<Finding> LintFile(const std::string& path, const std::string& contents) {
  std::vector<Finding> findings;
  const Views views = BuildViews(contents);
  const Suppressions sup = ScanNolint(path, contents);

  if (!IsSyncSource(path)) {
    CheckRawPrimitives(path, views, &findings);
  }
  if (UnderDir(path, "src/serve/")) {
    CheckServeAborts(path, views, &findings);
  }
  if (UnderDir(path, "src/")) {
    CheckBannedCalls(path, views, &findings);
  }
  CheckObsNames(path, views, &findings);

  findings.erase(std::remove_if(findings.begin(), findings.end(),
                                [&sup](const Finding& f) {
                                  return Suppressed(sup, f.line, f.rule);
                                }),
                 findings.end());
  findings.insert(findings.end(), sup.malformed.begin(), sup.malformed.end());
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) { return a.line < b.line; });
  return findings;
}

std::vector<Finding> LintPaths(const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  std::vector<Finding> findings;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (fs::recursive_directory_iterator it(path, ec), end; it != end && !ec;
           it.increment(ec)) {
        if (!it->is_regular_file()) {
          continue;
        }
        const std::string ext = it->path().extension().string();
        if (ext == ".h" || ext == ".cc") {
          files.push_back(it->path().string());
        }
      }
    } else if (fs::is_regular_file(path, ec)) {
      files.push_back(path);
    } else {
      findings.push_back({path, 0, "lint.io.unreadable", "path does not exist",
                          "check the path passed to t10-lint"});
    }
  }
  std::sort(files.begin(), files.end());
  for (const std::string& file : files) {
    std::ifstream stream(file);
    if (!stream.good()) {
      findings.push_back({file, 0, "lint.io.unreadable", "cannot open file", ""});
      continue;
    }
    std::ostringstream buffer;
    buffer << stream.rdbuf();
    std::vector<Finding> file_findings = LintFile(file, buffer.str());
    findings.insert(findings.end(), file_findings.begin(), file_findings.end());
  }
  return findings;
}

}  // namespace lint
}  // namespace t10
