// Project-invariant linter for t10 (README "t10-lint").
//
// A deliberately line-based rule engine — no libclang, no compiler plugin —
// that enforces the conventions the compiler cannot: the sync-wrapper
// migration stays total (no raw std::mutex outside src/util/sync.h), serving
// code never aborts on a request path, observability name literals follow
// the dotted grammar and are declared in the src/obs/names.cc table, and
// deterministic code never calls wall-clock or libc randomness. Findings
// mirror verify::Diagnostic (severity, stable rule id, message, hint), so
// `t10-lint src/` reads like `t10c --verify`.
//
// Rules (stable ids; suppress one occurrence with `// NOLINT(<rule>): why`):
//   lint.sync.raw-primitive      std::mutex / lock_guard / condition_variable
//                                (or their headers) outside src/util/sync.*
//   lint.serve.check             T10_CHECK* in src/serve — serving code
//                                returns Status, it does not abort
//   lint.obs.name-grammar        metric/journal literal violating
//                                `subsystem.noun.verb` (lowercase dotted)
//   lint.obs.unregistered-name   literal absent from src/obs/names.cc
//   lint.determinism.banned-call rand()/localtime()/time() family in src/
//   lint.nolint.missing-reason   NOLINT without `(<category>): <reason>`
//
// The scanner strips comments and string literals before matching token
// rules (so prose never trips them), tracks /* */ across lines, and parses
// multi-line call argument lists when extracting name literals. Dynamic
// names (built from variables, e.g. "compiler.pass." + pass.name()) are
// skipped here and covered by the '*' patterns in the names table.

#ifndef T10_TOOLS_LINT_ENGINE_H_
#define T10_TOOLS_LINT_ENGINE_H_

#include <string>
#include <vector>

namespace t10 {
namespace lint {

// One rule violation at one location. Everything t10-lint reports is an
// error: advisory lint is noise, and CI treats any finding as a failure.
struct Finding {
  std::string file;
  int line = 0;  // 1-based.
  std::string rule;
  std::string message;
  std::string hint;

  // "<file>:<line>: error[<rule>] <message> (hint: <hint>)".
  std::string Format() const;
};

// Lints `contents` as if read from `path` (the path decides which rules
// apply: serve rules under src/serve/, determinism rules under src/, the
// sync exemption for src/util/sync.*). Findings come back in line order.
std::vector<Finding> LintFile(const std::string& path, const std::string& contents);

// Expands each path (a file, or a directory walked recursively for
// .h/.cc files), lints every file, and returns all findings sorted by
// (file, line). An unreadable path yields a single "lint.io.unreadable"
// finding rather than aborting the run.
std::vector<Finding> LintPaths(const std::vector<std::string>& paths);

}  // namespace lint
}  // namespace t10

#endif  // T10_TOOLS_LINT_ENGINE_H_
