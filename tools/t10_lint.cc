// t10-lint: the project-invariant linter (see tools/lint_engine.h for the
// rule catalogue). Walks the given files/directories (.h/.cc), applies every
// rule, and prints verify-style diagnostics:
//
//   $ ./tools/t10-lint src/ tools/ bench/ examples/
//   src/serve/foo.cc:42: error[lint.serve.check] T10_CHECK aborts the
//   serving process (hint: return a t10::Status on request paths; ...)
//   t10-lint: 1 finding(s) in 214 file(s)
//
//   $ ./tools/t10-lint --list-rules
//
// Exit codes: 0 clean; 2 usage error; 6 lint findings.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "tools/lint_engine.h"

namespace {

void Usage() {
  std::printf(
      "usage: t10-lint [--list-rules] <path>...\n"
      "\n"
      "Lints t10 source files (.h/.cc; directories recurse) against the\n"
      "project invariants: sync-wrapper usage, serve abort discipline,\n"
      "observability name registration, determinism, NOLINT hygiene.\n"
      "\n"
      "exit codes: 0 clean; 2 usage error; 6 findings\n");
}

const char* const kRules[] = {
    "lint.sync.raw-primitive      raw std::mutex family outside src/util/sync.h",
    "lint.serve.check             T10_CHECK* in src/serve",
    "lint.obs.name-grammar        metric/journal literal off the dotted grammar",
    "lint.obs.unregistered-name   literal missing from src/obs/names.cc",
    "lint.determinism.banned-call rand()/time() family in src/",
    "lint.nolint.missing-reason   NOLINT without `(<category>): <reason>`",
    "lint.io.unreadable           a path passed on the command line is unreadable",
};

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      Usage();
      return 0;
    }
    if (std::strcmp(argv[i], "--list-rules") == 0) {
      for (const char* rule : kRules) {
        std::printf("%s\n", rule);
      }
      return 0;
    }
    if (argv[i][0] == '-') {
      std::fprintf(stderr, "t10-lint: unknown flag %s\n", argv[i]);
      Usage();
      return 2;
    }
    paths.emplace_back(argv[i]);
  }
  if (paths.empty()) {
    std::fprintf(stderr, "t10-lint: no paths given\n");
    Usage();
    return 2;
  }

  const std::vector<t10::lint::Finding> findings = t10::lint::LintPaths(paths);
  for (const t10::lint::Finding& finding : findings) {
    std::printf("%s\n", finding.Format().c_str());
  }
  if (!findings.empty()) {
    std::printf("t10-lint: %zu finding(s)\n", findings.size());
    return 6;
  }
  return 0;
}
